"""Stage-level artifact cache keyed by chained pass fingerprints.

An :class:`ArtifactCache` maps a pass's fingerprint (see
:mod:`repro.passes.fingerprint`) to the dict of artifacts that pass
wrote.  Because the fingerprint folds in the source text and every
upstream configuration knob, a hit is exact: the cached objects are the
ones the pass would have recomputed.

This is an **in-memory, intra-process** cache of live Python objects
(ASTs, CFGs, schedules) — the complement of the JSON-serialised,
on-disk :class:`repro.service.cache.AllocationCache` that persists only
final storage results.  Entries are shared by reference; downstream
passes treat their inputs as immutable (they already do — every
transformation in the pipeline builds new structures), so sharing is
safe.  Eviction is LRU with a bounded entry count.
"""

from __future__ import annotations

from collections import OrderedDict


class ArtifactCache:
    """LRU cache: pass fingerprint -> {artifact name: value}."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> dict[str, object] | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(self, fingerprint: str, artifacts: dict[str, object]) -> int:
        """Store an entry; returns how many LRU entries were evicted to
        make room (the pass manager surfaces the count on the pass's
        Tracer event)."""
        self._entries[fingerprint] = dict(artifacts)
        self._entries.move_to_end(fingerprint)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict[str, object]:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
