"""Typed pass-manager framework for the compilation pipeline.

``repro.passes.events``
    :class:`PassEvent` records, :class:`Tracer` sinks, and the
    :class:`Metrics`/:class:`StageMetric` stage-metrics protocol (the
    neutral home that breaks the old ``pipeline`` <-> ``service``
    import cycle).
``repro.passes.artifacts``
    Typed artifact registry, the :class:`ArtifactStore`, the frozen
    :class:`PipelineOptions`, and the public result records.
``repro.passes.fingerprint``
    Chained content fingerprints — the stage-level cache keys.
``repro.passes.cache``
    :class:`ArtifactCache` — LRU reuse of per-pass artifacts.
``repro.passes.delta``
    :class:`DeltaCache`/:class:`DeltaScope` — sub-pass fragment reuse
    (per-atom allocation fragments) across near-duplicate inputs.
``repro.passes.manager``
    :class:`Pass`, :class:`PassContext`, :class:`PassManager`.
``repro.passes.registry``
    The standard presets assembled from every layer's pass wrappers.

The registry (which imports every subpackage) is loaded lazily so that
low-level modules may import ``repro.passes.events`` and friends without
creating import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .artifacts import (
    ARTIFACTS,
    ArtifactSpec,
    ArtifactStore,
    CompiledProgram,
    PipelineOptions,
    SimulationResult,
    compiled_program,
    register_artifact,
)
from .cache import ArtifactCache
from .delta import DeltaCache, DeltaScope, fragment_weight
from .events import (
    CollectingTracer,
    Metrics,
    MetricsTracer,
    NullTracer,
    PassEvent,
    StageMetric,
    TeeTracer,
    Tracer,
)
from .fingerprint import chain_fingerprint, digest, initial_fingerprint
from .manager import Pass, PassContext, PassError, PassManager, PassRunResult

if TYPE_CHECKING:
    from .registry import (  # noqa: F401
        COMPILE_PASSES,
        FRONTEND_PASSES,
        FULL_PIPELINE,
        PASS_REGISTRY,
        default_manager,
        get_pass,
    )

_REGISTRY_EXPORTS = (
    "FRONTEND_PASSES",
    "COMPILE_PASSES",
    "FULL_PIPELINE",
    "PASS_REGISTRY",
    "default_manager",
    "get_pass",
)


def __getattr__(name: str) -> object:
    if name in _REGISTRY_EXPORTS:
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ARTIFACTS",
    "ArtifactCache",
    "ArtifactSpec",
    "ArtifactStore",
    "CollectingTracer",
    "CompiledProgram",
    "DeltaCache",
    "DeltaScope",
    "Metrics",
    "MetricsTracer",
    "NullTracer",
    "Pass",
    "PassContext",
    "PassError",
    "PassEvent",
    "PassManager",
    "PassRunResult",
    "PipelineOptions",
    "SimulationResult",
    "StageMetric",
    "TeeTracer",
    "Tracer",
    "chain_fingerprint",
    "compiled_program",
    "digest",
    "fragment_weight",
    "initial_fingerprint",
    "register_artifact",
    *_REGISTRY_EXPORTS,
]
