"""Sub-pass delta cache: fragment reuse below the stage fingerprints.

The chained fingerprints of :mod:`repro.passes.fingerprint` identify a
pass's *whole* output — one edited character invalidates every stage
downstream of ``parse``.  A :class:`DeltaCache` works below that
granularity: passes that can decompose their work into independent
units (the allocate pass's clique-separator atoms, see
:mod:`repro.core.workunits`) publish one **fragment** per unit under a
content address computed from the unit's own inputs, in a
relabel-invariant *rank space* (node ids normalised to 0..n-1).  A
near-duplicate program — same atoms, shifted value ids — then re-runs
only the units whose structure actually changed.

Keys are full content addresses (the unit payload is folded into a
SHA-256 via :func:`repro.passes.fingerprint.digest`), so a hit is exact
in the same sense as the stage cache.  Fragments are plain-data dicts
(rank lists and ints); entries are weighted by their payload size and
admitted against a weight budget — see :class:`ArtifactCache` for the
size-aware eviction rules.

:class:`DeltaScope` is the per-run view a pass sees: it binds the
shared cache to the pass's name and counts this run's hits/misses so
tracers and the service metrics can report per-request delta
effectiveness.
"""

from __future__ import annotations

import threading
from typing import Mapping

from .cache import ArtifactCache
from .fingerprint import digest


def fragment_weight(fragment: Mapping[str, object]) -> int:
    """Rough size of a fragment: total scalar count of its payload."""
    total = 0
    for value in fragment.values():
        if isinstance(value, (list, tuple)):
            for item in value:
                total += (
                    len(item) if isinstance(item, (list, tuple)) else 1
                )
        else:
            total += 1
    return max(1, total)


class DeltaCache(ArtifactCache):
    """Thread-safe, size-aware LRU of sub-pass artifact fragments.

    Defaults hold ~256k rank/module scalars (a few thousand typical
    atoms) with a per-entry admission cap of a quarter of the budget,
    so one huge monolithic-graph fragment cannot flush the pool.
    """

    def __init__(
        self,
        max_entries: int = 8192,
        max_weight: int = 262_144,
        max_entry_weight: int | None = None,
    ):
        super().__init__(
            max_entries=max_entries,
            max_weight=max_weight,
            weigher=fragment_weight,
            max_entry_weight=max_entry_weight,
        )
        self._lock = threading.Lock()

    def get(self, fingerprint: str) -> dict[str, object] | None:
        with self._lock:
            return super().get(fingerprint)

    def put(self, fingerprint: str, artifacts: dict[str, object]) -> int:
        with self._lock:
            return super().put(fingerprint, artifacts)

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def stats(self) -> dict[str, object]:
        with self._lock:
            return super().stats()


class DeltaScope:
    """One pass run's window onto a :class:`DeltaCache`.

    ``key()`` folds the pass name, a unit kind, and the unit's
    rank-space payload into a content address; ``get``/``put`` move
    fragments and keep per-run hit/miss counters (the shared cache keeps
    the lifetime ones).
    """

    __slots__ = ("cache", "pass_name", "hits", "misses")

    def __init__(self, cache: DeltaCache, pass_name: str = "allocate"):
        self.cache = cache
        self.pass_name = pass_name
        self.hits = 0
        self.misses = 0

    def key(self, kind: str, payload: object) -> str:
        return digest(
            {"pass": self.pass_name, "kind": kind, "unit": payload}
        )

    def get(self, key: str) -> dict[str, object] | None:
        fragment = self.cache.get(key)
        if fragment is None:
            self.misses += 1
        else:
            self.hits += 1
        return fragment

    def put(self, key: str, fragment: dict[str, object]) -> None:
        self.cache.put(key, fragment)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses
