"""Content fingerprints for the pass manager.

Every pass in a pipeline owns a *chained* fingerprint::

    fp_0      = digest({"artifacts": {"source": <text>}})
    fp_pass_i = digest({"parent": fp_{i-1}, "pass": name, "config": {...}})

so the fingerprint of any pass is a content address over the source
text plus every configuration knob of every pass up to and including
itself.  Two compilations share a pass fingerprint exactly when the
pass (and its whole upstream pipeline) would compute the same artifact
— which is what makes the fingerprint a safe stage-level cache key
(:class:`repro.passes.cache.ArtifactCache`).

Digests are SHA-256 over a canonical JSON rendering (sorted keys, no
whitespace), so they are stable across processes and interpreter
invocations regardless of ``PYTHONHASHSEED`` — the same property the
service-layer allocation cache relies on
(:mod:`repro.service.cache` imports :func:`canonical_bytes` from here).
"""

from __future__ import annotations

import hashlib
import json


def canonical_bytes(payload: object) -> bytes:
    """Canonical JSON encoding: sorted keys, minimal separators, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_value(value: object) -> object:
    """Render a configuration value as canonical-JSON-able data.

    Machine configurations are flattened to their defining tuple (the
    same rendering :func:`repro.service.cache.job_key` uses); tuples
    become lists; mappings are rebuilt with string keys; anything not
    JSON-representable falls back to ``repr``.
    """
    if hasattr(value, "num_fus") and hasattr(value, "num_modules"):
        # A MachineConfig (duck-typed to keep this module import-free).
        return [
            value.num_fus,
            value.num_modules,
            value.ports,  # type: ignore[attr-defined]
            value.delta,  # type: ignore[attr-defined]
        ]
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (set, frozenset)):
        return sorted(repr(v) for v in value)
    return repr(value)


def digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical encoding of ``payload``."""
    return hashlib.sha256(canonical_bytes(encode_value(payload))).hexdigest()


def initial_fingerprint(artifacts: dict[str, object]) -> str:
    """Fingerprint of a pipeline's initial artifacts (usually the
    source text)."""
    return digest({"artifacts": artifacts})


def chain_fingerprint(
    parent: str, pass_name: str, config: dict[str, object]
) -> str:
    """Fold one pass (name + configuration) into the fingerprint chain."""
    return digest({"parent": parent, "pass": pass_name, "config": config})
