"""Structured per-pass events, tracers, and the stage-metrics protocol.

This module is deliberately dependency-free (stdlib only) so that any
layer — ``repro.pipeline``, ``repro.core.strategies``, ``repro.service``
— can import it without creating an import cycle.  It is the neutral
home of the :class:`Metrics`/:class:`StageMetric` protocol (which
originally lived in the since-retired ``repro.service.metrics``).

Two observation channels exist:

:class:`Tracer`
    A pluggable sink of :class:`PassEvent` records.  The pass manager
    emits one ``start`` and one terminal event (``end``, ``cache-hit``,
    ``skip``, or ``error``) per pass, carrying wall time, the pass's
    chained fingerprint, size counters, and warnings.
:class:`Metrics`
    The flat per-stage accumulator consumed by the batch service's JSON
    reports.  :class:`MetricsTracer` adapts the event stream onto it so
    the pre-pass-manager report format is preserved byte for byte.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, runtime_checkable

#: Terminal statuses a pass run can end with.
PASS_STATUSES = ("start", "end", "cache-hit", "skip", "error")


@dataclass(frozen=True, slots=True)
class PassEvent:
    """One structured observation about one pass execution."""

    name: str
    status: str  # one of PASS_STATUSES
    wall_time: float = 0.0
    fingerprint: str | None = None
    counts: dict[str, int | float] = field(default_factory=dict)
    warnings: tuple[str, ...] = ()

    @property
    def is_terminal(self) -> bool:
        return self.status != "start"

    @property
    def executed(self) -> bool:
        """Did the pass actually run (as opposed to being served from
        cache or skipped)?"""
        return self.status in ("end", "error")

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "pass": self.name,
            "status": self.status,
            "wall_time": self.wall_time,
        }
        if self.fingerprint is not None:
            out["fingerprint"] = self.fingerprint
        if self.counts:
            out["counts"] = dict(self.counts)
        if self.warnings:
            out["warnings"] = list(self.warnings)
        return out


@runtime_checkable
class Tracer(Protocol):
    """Anything that can receive pass events."""

    def emit(self, event: PassEvent) -> None: ...


class NullTracer:
    """Discards every event."""

    def emit(self, event: PassEvent) -> None:
        pass


class CollectingTracer:
    """Buffers every event in order; the default sink for CLI traces
    and tests."""

    def __init__(self) -> None:
        self.events: list[PassEvent] = []

    def emit(self, event: PassEvent) -> None:
        self.events.append(event)

    # -- queries ------------------------------------------------------------

    def completed(self) -> list[PassEvent]:
        """Terminal events, in pipeline order."""
        return [e for e in self.events if e.is_terminal]

    def by_name(self, name: str) -> list[PassEvent]:
        return [e for e in self.events if e.name == name]

    def cache_hits(self) -> list[PassEvent]:
        return [e for e in self.events if e.status == "cache-hit"]

    def pass_times(self) -> dict[str, float]:
        """Total wall time per executed pass name."""
        out: dict[str, float] = {}
        for e in self.events:
            if e.executed:
                out[e.name] = out.get(e.name, 0.0) + e.wall_time
        return out

    def as_rows(self) -> list[dict[str, object]]:
        return [e.as_dict() for e in self.completed()]


class TeeTracer:
    """Fans each event out to several tracers."""

    def __init__(self, tracers: Iterable[Tracer]):
        self.tracers = list(tracers)

    def emit(self, event: PassEvent) -> None:
        for tracer in self.tracers:
            tracer.emit(event)


class EventLog:
    """Bounded sliding-window tracer for long-running services.

    Unlike :class:`CollectingTracer` (which grows without bound and
    suits one compilation), an ``EventLog`` keeps only the most recent
    ``maxlen`` events plus a lifetime total — the shape a server's
    ``stats`` endpoint can expose indefinitely.  The compile server's
    adaptive upgrade lane emits one event per attempted upgrade here.
    """

    def __init__(self, maxlen: int = 256):
        from collections import deque

        self.events: "deque[PassEvent]" = deque(maxlen=maxlen)
        self.total = 0

    def emit(self, event: PassEvent) -> None:
        self.events.append(event)
        self.total += 1

    def as_rows(self) -> list[dict[str, object]]:
        """JSON-able rendering of the window, oldest first."""
        return [e.as_dict() for e in self.events]


# --------------------------------------------------------------------------
# Stage metrics (moved verbatim from repro.service.metrics)
# --------------------------------------------------------------------------


@dataclass(slots=True)
class StageMetric:
    """One pipeline stage's timing and size counters."""

    name: str
    wall_time: float = 0.0
    counts: dict[str, int | float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {"name": self.name, "wall_time": self.wall_time, **self.counts}


@dataclass(slots=True)
class Metrics:
    """Accumulates per-stage metrics and global counters."""

    stages: list[StageMetric] = field(default_factory=list)
    counters: dict[str, int | float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str, **counts: int | float) -> Iterator[StageMetric]:
        """Time a stage; the yielded record's ``counts`` may be filled
        in by the body."""
        record = StageMetric(name, counts=dict(counts))
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_time = time.perf_counter() - t0
            self.stages.append(record)

    def add_stage(
        self, name: str, wall_time: float, **counts: int | float
    ) -> StageMetric:
        record = StageMetric(name, wall_time, dict(counts))
        self.stages.append(record)
        return record

    def incr(self, counter: str, amount: int | float = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    # -- queries ------------------------------------------------------------

    def stage_time(self, name: str) -> float:
        return sum(s.wall_time for s in self.stages if s.name == name)

    @property
    def total_time(self) -> float:
        return sum(s.wall_time for s in self.stages)

    def merge(self, other: "Metrics") -> None:
        self.stages.extend(other.stages)
        for key, value in other.counters.items():
            self.incr(key, value)

    def as_dict(self) -> dict[str, object]:
        return {
            "stages": [s.as_dict() for s in self.stages],
            "counters": dict(self.counters),
            "total_time": self.total_time,
        }


class LatencyRecorder:
    """Bounded reservoir of duration samples with percentile queries.

    The compile server records per-request latencies here (queue wait,
    execution, end-to-end); ``snapshot()`` is what the ``stats``
    endpoint publishes.  The reservoir keeps the most recent
    ``max_samples`` observations (a sliding window — old traffic ages
    out), while ``count``/``total_time``/``max_seen`` cover the full
    lifetime.  Percentiles use the nearest-rank method on the window.
    """

    __slots__ = ("_window", "count", "total_time", "max_seen")

    def __init__(self, max_samples: int = 4096):
        from collections import deque

        self._window: deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.total_time = 0.0
        self.max_seen = 0.0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1
        self.total_time += seconds
        if seconds > self.max_seen:
            self.max_seen = seconds

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in 0..100) over the window."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
        return ordered[min(len(ordered), int(rank)) - 1]

    @property
    def mean(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max_seen,
        }


class MetricsTracer:
    """Adapts the pass-event stream onto a :class:`Metrics` collector.

    Executed passes become stages named exactly like the pre-refactor
    pipeline stages ("parse", "lower", ...), keeping the batch service's
    JSON stable.  Cache hits are recorded as zero-ish-time stages with a
    ``cached`` marker and counted in ``counters['pass_cache_hits']``.
    """

    def __init__(self, metrics: Metrics):
        self.metrics = metrics

    def emit(self, event: PassEvent) -> None:
        if event.status in ("end", "error"):
            self.metrics.add_stage(event.name, event.wall_time, **event.counts)
        elif event.status == "cache-hit":
            self.metrics.add_stage(
                event.name, event.wall_time, cached=1, **event.counts
            )
            self.metrics.incr("pass_cache_hits")
