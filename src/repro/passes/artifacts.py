"""Typed artifacts flowing between passes, and the pipeline options.

Artifacts are the values a pass reads and writes: the source text, the
AST, the CFG, the renamed program, the LIW schedule, the storage
result, the simulation result.  Each has a declared type in
:data:`ARTIFACTS`; the :class:`ArtifactStore` enforces the declaration
when a pass publishes a value, so a mis-wired pipeline fails loudly at
the pass boundary instead of deep inside a later pass.

Type declarations are dotted paths resolved lazily (on first check), so
this module imports nothing from the rest of the package and every
layer can depend on it without cycles.

:class:`CompiledProgram` and :class:`SimulationResult` — the public
result types of :mod:`repro.pipeline` — live here for the same reason:
the pass wrappers in ``repro.liw``/``repro.memsim`` and the pipeline
facade both need them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from importlib import import_module
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # annotation-only; no runtime imports (cycle-free)
    from ..ir.cfg import Cfg
    from ..ir.rename import RenamedProgram
    from ..liw.executor import ExecResult
    from ..liw.machine import MachineConfig
    from ..liw.schedule import Schedule
    from ..memsim.simulator import MemoryReport


# --------------------------------------------------------------------------
# Artifact declarations
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ArtifactSpec:
    """One named, typed artifact a pass may read or write."""

    name: str
    type_path: str  # dotted "module:attr" path, resolved lazily
    description: str = ""

    def resolve(self) -> type:
        cached = _RESOLVED.get(self.name)
        if cached is None:
            module_name, _, attr = self.type_path.partition(":")
            cached = getattr(import_module(module_name), attr)
            _RESOLVED[self.name] = cached
        return cached


_RESOLVED: dict[str, type] = {}
ARTIFACTS: dict[str, ArtifactSpec] = {}


def register_artifact(
    name: str, type_path: str, description: str = ""
) -> ArtifactSpec:
    """Declare (or re-declare) an artifact name and its expected type."""
    spec = ArtifactSpec(name, type_path, description)
    ARTIFACTS[name] = spec
    _RESOLVED.pop(name, None)
    return spec


register_artifact("source", "builtins:str", "mini-language source text")
register_artifact("inputs", "builtins:list", "runtime input value stream")
register_artifact("ast", "repro.lang.ast_nodes:Program", "parse tree")
register_artifact(
    "symbols", "repro.lang.sema:SymbolTable", "semantic-analysis symbol table"
)
register_artifact("tac", "repro.ir.tac:TacProgram", "three-address code")
register_artifact("cfg", "repro.ir.cfg:Cfg", "control-flow graph")
register_artifact(
    "renamed", "repro.ir.rename:RenamedProgram", "program over data values"
)
register_artifact(
    "schedule", "repro.liw.schedule:Schedule", "long-instruction schedule"
)
register_artifact(
    "storage",
    "repro.core.strategies:StorageResult",
    "storage assignment (allocation + residual conflicts)",
)
register_artifact(
    "array_plan",
    "repro.core.arraylayout:ArrayLayoutPlan",
    "optimized per-array layouts + schedule moves (array-opt pass)",
)
register_artifact(
    "simulation",
    "repro.passes.artifacts:SimulationResult",
    "execution outputs + Δ-model memory report",
)


class ArtifactStore:
    """The artifacts produced so far in one pipeline run."""

    __slots__ = ("_data",)

    def __init__(self, initial: dict[str, object] | None = None):
        self._data: dict[str, object] = {}
        for name, value in (initial or {}).items():
            self.set(name, value)

    def set(self, name: str, value: object) -> None:
        spec = ARTIFACTS.get(name)
        if spec is None:
            raise KeyError(
                f"unknown artifact {name!r}; declare it with "
                f"repro.passes.register_artifact first"
            )
        expected = spec.resolve()
        if not isinstance(value, expected):
            raise TypeError(
                f"artifact {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
        self._data[name] = value

    def get(self, name: str) -> object:
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(
                f"artifact {name!r} has not been produced; is the pass "
                f"that writes it in the pipeline (before its readers)?"
            ) from None

    def get_optional(self, name: str, default: object = None) -> object:
        return self._data.get(name, default)

    def has(self, name: str) -> bool:
        return name in self._data

    def names(self) -> list[str]:
        return sorted(self._data)

    def as_dict(self) -> dict[str, object]:
        return dict(self._data)


# --------------------------------------------------------------------------
# Pipeline options
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PipelineOptions:
    """Every configuration knob of the standard pipeline, in one frozen
    record.  Each pass declares which fields feed its fingerprint
    (``Pass.config_keys``); changing any other field leaves that pass's
    cached artifacts valid."""

    machine: "MachineConfig | None" = None
    # front end
    #: source-language frontend ('mini' or 'python'); selects which
    #: pass sequence takes source text to tac/cfg
    frontend: str = "mini"
    #: entry-function name for the python frontend ('' = the single
    #: top-level function in the source)
    py_entry: str = ""
    unroll: int = 1
    unroll_innermost_only: bool = False
    constants_in_memory: bool = False
    immediate_limit: int = 15
    simplify: bool = True
    rename_mode: str = "web"
    # storage assignment
    strategy: str = "STOR1"
    method: str = "hitting_set"
    k: int | None = None
    seed: int = 0
    strategy_knobs: tuple[tuple[str, object], ...] = ()
    #: work-unit execution mode for the allocate pass
    #: ('serial'/'auto'/'threads'/'processes').  Pure execution policy:
    #: results are byte-identical across runners, so this field is
    #: deliberately NOT in any pass's config_keys — switching runners
    #: keeps every cached artifact valid.
    runner: str = "serial"
    #: array-layout mode: 'fixed' keeps the layout the simulation was
    #: asked for; 'optimize' runs the compile-time bank-conflict
    #: minimizer (the ``array-opt`` pass) and simulates under its plan.
    array_layout: str = "fixed"
    # simulation
    layout: str = "interleaved"
    delta: float = 1.0
    max_cycles: int = 5_000_000
    scheduled_transfers: bool = False

    def resolved_machine(self) -> "MachineConfig":
        if self.machine is not None:
            return self.machine
        from ..liw.machine import MachineConfig

        return MachineConfig()

    def knobs(self) -> dict[str, object]:
        return dict(self.strategy_knobs)

    def with_knobs(self, **knobs: object) -> "PipelineOptions":
        merged = {**self.knobs(), **knobs}
        return replace(
            self, strategy_knobs=tuple(sorted(merged.items()))
        )


# --------------------------------------------------------------------------
# Public result records (re-exported by repro.pipeline)
# --------------------------------------------------------------------------


@dataclass(slots=True)
class CompiledProgram:
    """A program after the machine-independent and scheduling phases."""

    name: str
    cfg: "Cfg"
    renamed: "RenamedProgram"
    schedule: "Schedule"

    @property
    def machine(self) -> "MachineConfig":
        return self.schedule.machine


@dataclass(slots=True)
class SimulationResult:
    exec_result: "ExecResult"
    memory: "MemoryReport"

    @property
    def outputs(self) -> list[object]:
        return self.exec_result.outputs

    @property
    def cycles(self) -> int:
        return self.exec_result.cycles

    @property
    def total_time(self) -> float:
        """Execution cycles plus transfer-serialisation stall time beyond
        the one Δ-per-instruction already inside the cycle count."""
        return self.cycles + self.memory.stall_time


def compiled_program(store: ArtifactStore) -> CompiledProgram:
    """Assemble the public :class:`CompiledProgram` from a run's
    front-end artifacts."""
    tac = store.get("tac")
    return CompiledProgram(
        tac.name,  # type: ignore[attr-defined]
        store.get("cfg"),  # type: ignore[arg-type]
        store.get("renamed"),  # type: ignore[arg-type]
        store.get("schedule"),  # type: ignore[arg-type]
    )


def iter_specs() -> Iterable[ArtifactSpec]:
    return ARTIFACTS.values()


__all__ = [
    "ARTIFACTS",
    "ArtifactSpec",
    "ArtifactStore",
    "CompiledProgram",
    "PipelineOptions",
    "SimulationResult",
    "compiled_program",
    "iter_specs",
    "register_artifact",
]
