"""The pass manager: typed passes, ordered execution, tracing, caching.

A :class:`Pass` is a named unit of compilation work with declared input
and output artifacts (checked against :data:`repro.passes.artifacts
.ARTIFACTS`), a declared configuration slice (the
:class:`~repro.passes.artifacts.PipelineOptions` fields that change its
result), and a run function operating on a :class:`PassContext`.

The :class:`PassManager` runs a sequence of passes over an
:class:`~repro.passes.artifacts.ArtifactStore`:

- every pass — enabled or not — folds its configuration into the
  chained content fingerprint, so fingerprints identify *what would be
  computed*, not merely what ran;
- a cacheable pass whose fingerprint is in the
  :class:`~repro.passes.cache.ArtifactCache` is served from cache (its
  output artifacts are published without running it);
- every pass emits structured :class:`~repro.passes.events.PassEvent`
  records (wall time, counters, warnings) to the configured tracer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .artifacts import ArtifactStore, PipelineOptions
from .cache import ArtifactCache
from .delta import DeltaCache, DeltaScope
from .events import NullTracer, PassEvent, Tracer
from .fingerprint import chain_fingerprint, encode_value, initial_fingerprint


class PassError(RuntimeError):
    """A pass violated the framework contract (missing reads/writes)."""


class PassContext:
    """What a pass run function sees: the store, the options, the
    event channel for counters, warnings, and sub-stage timings, and —
    when the manager carries a :class:`~repro.passes.delta.DeltaCache`
    — a per-run :class:`~repro.passes.delta.DeltaScope` for sub-pass
    fragment reuse."""

    __slots__ = (
        "store", "options", "counts", "warnings", "delta", "_emit", "_name",
    )

    def __init__(
        self,
        store: ArtifactStore,
        options: PipelineOptions,
        name: str,
        emit: Callable[[PassEvent], None],
        delta: DeltaScope | None = None,
    ):
        self.store = store
        self.options = options
        self.counts: dict[str, int | float] = {}
        self.warnings: list[str] = []
        self.delta = delta
        self._emit = emit
        self._name = name

    def get(self, name: str) -> object:
        return self.store.get(name)

    def get_optional(self, name: str, default: object = None) -> object:
        return self.store.get_optional(name, default)

    def set(self, name: str, value: object) -> None:
        self.store.set(name, value)

    def count(self, name: str, value: int | float) -> None:
        self.counts[name] = value

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def emit_sub(
        self, name: str, wall_time: float, **counts: int | float
    ) -> None:
        """Report a sub-stage (e.g. one STOR2 region) as its own event."""
        self._emit(
            PassEvent(
                f"{self._name}.{name}", "end", wall_time, counts=dict(counts)
            )
        )


@dataclass(frozen=True, slots=True)
class Pass:
    """One registered compilation pass."""

    name: str
    run: Callable[[PassContext], None]
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    #: PipelineOptions fields that feed this pass's fingerprint.
    config_keys: tuple[str, ...] = ()
    #: When set, the pass is skipped (but still fingerprinted) unless
    #: this predicate holds for the run's options.
    enabled: Callable[[PipelineOptions], bool] | None = None
    #: Whether the pass's outputs may be served from an ArtifactCache.
    cacheable: bool = True

    def config(self, options: PipelineOptions) -> dict[str, object]:
        out: dict[str, object] = {}
        for key in self.config_keys:
            value = (
                options.resolved_machine()
                if key == "machine"
                else getattr(options, key)
            )
            out[key] = encode_value(value)
        return out


@dataclass(slots=True)
class PassRunResult:
    """Everything one :meth:`PassManager.run` produced."""

    store: ArtifactStore
    fingerprints: dict[str, str]
    events: list[PassEvent] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def artifact(self, name: str) -> object:
        return self.store.get(name)

    def pass_times(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            if e.executed:
                out[e.name] = out.get(e.name, 0.0) + e.wall_time
        return out

    @property
    def total_time(self) -> float:
        return sum(e.wall_time for e in self.events if e.executed)


class PassManager:
    """Run a fixed sequence of passes with tracing and stage caching.

    Parameters
    ----------
    passes:
        The ordered pipeline.  Names must be unique.
    tracer:
        Event sink; defaults to discarding.
    cache:
        Optional :class:`ArtifactCache` for stage-level reuse across
        runs (cacheable passes only).
    fingerprint_artifacts:
        Which initial artifacts seed the fingerprint chain.  Artifacts
        outside this set (e.g. runtime ``inputs``) never affect cache
        keys — which is why passes depending on them must be declared
        ``cacheable=False``.
    delta:
        Optional :class:`~repro.passes.delta.DeltaCache` for *sub-pass*
        fragment reuse: each executed pass receives a
        :class:`~repro.passes.delta.DeltaScope` bound to its name on
        ``ctx.delta``, and its per-run hit/miss counts surface as
        ``delta_hits``/``delta_misses`` on the pass's end event.
        Unlike ``cache`` (whole-stage, exact fingerprint match), the
        delta cache pays off on *near*-duplicate inputs.
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        tracer: Tracer | None = None,
        cache: ArtifactCache | None = None,
        fingerprint_artifacts: tuple[str, ...] = ("source",),
        delta: DeltaCache | None = None,
    ):
        names = [p.name for p in passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")
        self.passes = tuple(passes)
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.cache = cache
        self.delta = delta
        self.fingerprint_artifacts = fingerprint_artifacts

    def run(
        self,
        initial: dict[str, object],
        options: PipelineOptions | None = None,
    ) -> PassRunResult:
        options = options if options is not None else PipelineOptions()
        store = ArtifactStore(initial)
        result = PassRunResult(store, {})

        def emit(event: PassEvent) -> None:
            result.events.append(event)
            self.tracer.emit(event)

        fp = initial_fingerprint(
            {
                name: initial[name]
                for name in self.fingerprint_artifacts
                if name in initial
            }
        )
        for p in self.passes:
            fp = chain_fingerprint(fp, p.name, p.config(options))
            result.fingerprints[p.name] = fp

            if p.enabled is not None and not p.enabled(options):
                emit(PassEvent(p.name, "skip", fingerprint=fp))
                continue

            if p.cacheable and self.cache is not None:
                entry = self.cache.get(fp)
                if entry is not None:
                    for name, value in entry.items():
                        store.set(name, value)
                    result.cache_hits += 1
                    emit(PassEvent(p.name, "cache-hit", 0.0, fp))
                    continue
                result.cache_misses += 1

            missing = [r for r in p.reads if not store.has(r)]
            if missing:
                raise PassError(
                    f"pass {p.name!r} needs artifact(s) {missing} which no "
                    f"earlier pass produced"
                )

            scope = (
                DeltaScope(self.delta, p.name)
                if self.delta is not None
                else None
            )
            ctx = PassContext(store, options, p.name, emit, scope)
            emit(PassEvent(p.name, "start", fingerprint=fp))
            t0 = time.perf_counter()
            try:
                p.run(ctx)
            except Exception:
                emit(
                    PassEvent(
                        p.name,
                        "error",
                        time.perf_counter() - t0,
                        fp,
                        dict(ctx.counts),
                        tuple(ctx.warnings),
                    )
                )
                raise
            wall = time.perf_counter() - t0
            if scope is not None and scope.lookups:
                ctx.counts.setdefault("delta_hits", scope.hits)
                ctx.counts.setdefault("delta_misses", scope.misses)

            unwritten = [w for w in p.writes if not store.has(w)]
            if unwritten:
                raise PassError(
                    f"pass {p.name!r} declared writes {list(p.writes)} but "
                    f"did not produce {unwritten}"
                )
            # Store before emitting "end" so the event can carry the
            # cache's LRU eviction count for this pass.
            if p.cacheable and self.cache is not None:
                evicted = self.cache.put(
                    fp, {w: store.get(w) for w in p.writes}
                )
                if evicted:
                    ctx.counts["cache_evictions"] = evicted
            emit(
                PassEvent(
                    p.name, "end", wall, fp, dict(ctx.counts),
                    tuple(ctx.warnings),
                )
            )

        return result
