"""The standard pass pipelines, assembled from every layer's wrappers.

Each subpackage contributes its own pass wrappers
(``repro.lang.passes``, ``repro.ir.passes``, ``repro.liw.passes``,
``repro.core.passes``, ``repro.memsim.passes``); this module stitches
them into the presets the pipeline facade, the CLI, and the batch
service run:

``FRONTEND_PASSES``
    parse -> unroll -> sema -> lower -> simplify -> rename -> schedule
    (what :func:`repro.pipeline.compile_source` runs).
``COMPILE_PASSES``
    the front end plus ``allocate`` and the conditional ``array-opt``
    layout optimizer (``python -m repro compile``).
``FULL_PIPELINE``
    everything including ``simulate`` (``python -m repro run``).
"""

from __future__ import annotations

from ..core.passes import ALLOCATE, ARRAY_OPT
from ..ir.passes import LOWER, RENAME, SIMPLIFY, UNROLL
from ..lang.passes import PARSE, SEMA
from ..liw.passes import SCHEDULE
from ..memsim.passes import SIMULATE
from .cache import ArtifactCache
from .events import Tracer
from .manager import Pass, PassManager

FRONTEND_PASSES: tuple[Pass, ...] = (
    PARSE, UNROLL, SEMA, LOWER, SIMPLIFY, RENAME, SCHEDULE,
)
COMPILE_PASSES: tuple[Pass, ...] = FRONTEND_PASSES + (ALLOCATE, ARRAY_OPT)
FULL_PIPELINE: tuple[Pass, ...] = COMPILE_PASSES + (SIMULATE,)

PASS_REGISTRY: dict[str, Pass] = {p.name: p for p in FULL_PIPELINE}


def get_pass(name: str) -> Pass:
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; registered passes: "
            f"{sorted(PASS_REGISTRY)}"
        ) from None


def default_manager(
    passes: tuple[Pass, ...] | None = None,
    tracer: Tracer | None = None,
    cache: ArtifactCache | None = None,
) -> PassManager:
    """A pass manager over one of the standard presets (front end by
    default)."""
    return PassManager(
        passes if passes is not None else FRONTEND_PASSES,
        tracer=tracer,
        cache=cache,
    )
