"""The standard pass pipelines, assembled from every layer's wrappers.

Each subpackage contributes its own pass wrappers
(``repro.lang.passes``, ``repro.ir.passes``, ``repro.liw.passes``,
``repro.core.passes``, ``repro.memsim.passes``); this module stitches
them into the presets the pipeline facade, the CLI, and the batch
service run:

``FRONTEND_PASSES``
    parse -> unroll -> sema -> lower -> simplify -> rename -> schedule
    (what :func:`repro.pipeline.compile_source` runs).
``COMPILE_PASSES``
    the front end plus ``allocate`` and the conditional ``array-opt``
    layout optimizer (``python -m repro compile``).
``FULL_PIPELINE``
    everything including ``simulate`` (``python -m repro run``).

The constants above are the *mini-language* presets, kept byte-for-byte
identical (same pass objects, same fingerprints) now that frontends are
pluggable.  For other source languages use the per-frontend builders
:func:`frontend_passes_for` / :func:`compile_passes_for` /
:func:`full_pipeline_for`, which splice a registered
:class:`repro.frontends.Frontend`'s source -> tac/cfg section in front
of the shared frontend-agnostic tail (simplify/rename/schedule/...).
"""

from __future__ import annotations

from ..core.passes import ALLOCATE, ARRAY_OPT
from ..frontends.base import DEFAULT_FRONTEND, get_frontend
from ..frontends.pybytecode import PYFRONT
from ..ir.passes import LOWER, RENAME, SIMPLIFY, UNROLL
from ..lang.passes import PARSE, SEMA
from ..liw.passes import SCHEDULE
from ..memsim.passes import SIMULATE
from .cache import ArtifactCache
from .events import Tracer
from .manager import Pass, PassManager

FRONTEND_PASSES: tuple[Pass, ...] = (
    PARSE, UNROLL, SEMA, LOWER, SIMPLIFY, RENAME, SCHEDULE,
)
COMPILE_PASSES: tuple[Pass, ...] = FRONTEND_PASSES + (ALLOCATE, ARRAY_OPT)
FULL_PIPELINE: tuple[Pass, ...] = COMPILE_PASSES + (SIMULATE,)

#: The frontend-agnostic tail shared by every source language.
MIDDLE_PASSES: tuple[Pass, ...] = (SIMPLIFY, RENAME, SCHEDULE)

PASS_REGISTRY: dict[str, Pass] = {p.name: p for p in FULL_PIPELINE}
PASS_REGISTRY[PYFRONT.name] = PYFRONT


def frontend_passes_for(frontend: str = DEFAULT_FRONTEND) -> tuple[Pass, ...]:
    """source -> schedule for one frontend.  For ``mini`` this is the
    exact :data:`FRONTEND_PASSES` tuple (identical pass objects, so the
    default path's fingerprints are unchanged)."""
    if frontend == DEFAULT_FRONTEND:
        return FRONTEND_PASSES
    return get_frontend(frontend).passes() + MIDDLE_PASSES


def compile_passes_for(frontend: str = DEFAULT_FRONTEND) -> tuple[Pass, ...]:
    """Frontend passes plus allocation and the array-layout optimizer."""
    if frontend == DEFAULT_FRONTEND:
        return COMPILE_PASSES
    return frontend_passes_for(frontend) + (ALLOCATE, ARRAY_OPT)


def full_pipeline_for(frontend: str = DEFAULT_FRONTEND) -> tuple[Pass, ...]:
    """Everything including simulation, for one frontend."""
    if frontend == DEFAULT_FRONTEND:
        return FULL_PIPELINE
    return compile_passes_for(frontend) + (SIMULATE,)


def get_pass(name: str) -> Pass:
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; registered passes: "
            f"{sorted(PASS_REGISTRY)}"
        ) from None


def default_manager(
    passes: tuple[Pass, ...] | None = None,
    tracer: Tracer | None = None,
    cache: ArtifactCache | None = None,
) -> PassManager:
    """A pass manager over one of the standard presets (front end by
    default)."""
    return PassManager(
        passes if passes is not None else FRONTEND_PASSES,
        tracer=tracer,
        cache=cache,
    )
