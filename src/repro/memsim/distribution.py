"""Exact distribution of the per-instruction maximum module load.

The paper's t_ave model (§3) assumes each array reference lands in a
uniformly random memory module.  For an instruction whose scalar
operands produce a fixed per-module load vector and which additionally
performs ``n`` array accesses, we need ``p(i)`` — the probability that
some module ends up serving ``i`` accesses — because the fetch phase
then costs ``i·Δ`` (the paper's ``t_ave = Σ i·Δ·p(i)``).

Modules are exchangeable under uniform placement, so the DP state is the
*multiset* of module loads; the state space stays tiny for k ≤ 8 and a
handful of array accesses, making the computation exact (no Monte
Carlo).
"""

from __future__ import annotations

from functools import lru_cache


@lru_cache(maxsize=65536)
def max_load_distribution(
    initial_loads: tuple[int, ...], n_random: int
) -> dict[int, float]:
    """``p(i)`` for the max load after ``n_random`` uniform accesses.

    ``initial_loads`` is the per-module load vector from accesses whose
    module is known at compile time (scalars); its length is k.  The
    returned dict maps load value -> probability (sums to 1).
    """
    k = len(initial_loads)
    if k == 0:
        raise ValueError("need at least one module")

    # States are descending-sorted load tuples (module identity does not
    # matter for uniformly-random placement).
    state0 = tuple(sorted(initial_loads, reverse=True))
    dist: dict[tuple[int, ...], float] = {state0: 1.0}
    for _ in range(n_random):
        nxt: dict[tuple[int, ...], float] = {}
        for state, prob in dist.items():
            # Group modules by load value; adding an access to any module
            # of load L yields the same successor multiset.
            seen: set[int] = set()
            for idx, load in enumerate(state):
                if load in seen:
                    continue
                seen.add(load)
                count = state.count(load)
                bumped = list(state)
                bumped[idx] = load + 1
                succ = tuple(sorted(bumped, reverse=True))
                nxt[succ] = nxt.get(succ, 0.0) + prob * count / k
        dist = nxt

    out: dict[int, float] = {}
    for state, prob in dist.items():
        top = state[0]
        out[top] = out.get(top, 0.0) + prob
    return out


def expected_max_load(initial_loads: tuple[int, ...], n_random: int) -> float:
    """E[max module load] — the paper's Σ i·p(i) (Δ factored out)."""
    dist = max_load_distribution(initial_loads, n_random)
    return sum(i * p for i, p in dist.items())


def min_possible_max_load(
    initial_loads: tuple[int, ...], n_extra: int
) -> int:
    """Best-case max load when ``n_extra`` accesses may be steered to any
    module (the t_min assumption: array references never conflict).
    Greedy into the least-loaded module is optimal for max-load."""
    loads = sorted(initial_loads)
    for _ in range(n_extra):
        loads[0] += 1
        loads.sort()
    return loads[-1] if loads else 0
