"""Array storage layouts across memory modules.

Scalars are placed by the paper's algorithms; array *elements* land in
modules according to a layout policy fixed at compile time:

- :class:`InterleavedLayout` — element ``a[i]`` lives in module
  ``(base_a + i) mod k`` (low-order interleaving, the practical default
  the paper assumes for t_ave: "the elements of the same array will be
  distributed uniformly among the memory modules");
- :class:`SingleModuleLayout` — every array in one module (the paper's
  pathological t_max scenario);
- :class:`PerArrayLayout` — each whole array in its own module
  (round-robin across arrays, with optional validated pinning);
- :class:`SkewedLayout` — module ``(base_a + i + digitsum_k(i // k))
  mod k``: a base-k digit-sum skew (Budnik-Kuck lineage) that breaks
  *every* power-of-two stride, not just stride k.

:class:`LayoutSpec` / :class:`PlannedLayout` are the parameterized
family the compile-time array-layout optimizer
(:mod:`repro.core.arraylayout`) chooses from: per array, one of the
policies above with a free base offset (or a pinned module), so the
optimizer can steer arrays away from each other and from scalar-hot
modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence


class UnknownArrayError(KeyError):
    """An access to an array the layout was not built for."""


class ArrayLayout(Protocol):
    """Maps an array-element access to a memory module."""

    def module(self, array: str, index: int) -> int: ...


def digit_skew(n: int, k: int) -> int:
    """Sum of the base-k digits of ``n`` (0 when k < 2)."""
    if k < 2:
        return 0
    s = 0
    while n:
        s += n % k
        n //= k
    return s


class _BaseLayout:
    """Common machinery: arrays get deterministic base offsets in
    declaration order."""

    def __init__(self, arrays: Sequence[str], k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.base = {name: i for i, name in enumerate(arrays)}

    def _base_of(self, array: str) -> int:
        try:
            return self.base[array]
        except KeyError:
            raise UnknownArrayError(f"unknown array {array!r}") from None

    def _check_module_index(self, module_index: int, what: str) -> int:
        if not 0 <= module_index < self.k:
            raise ValueError(
                f"{what} {module_index} out of range for k={self.k}"
            )
        return module_index


class InterleavedLayout(_BaseLayout):
    def module(self, array: str, index: int) -> int:
        return (self._base_of(array) + index) % self.k


class SingleModuleLayout(_BaseLayout):
    def __init__(self, arrays: Sequence[str], k: int, module_index: int = 0):
        super().__init__(arrays, k)
        self._module = self._check_module_index(module_index, "module_index")

    def module(self, array: str, index: int) -> int:
        self._base_of(array)
        return self._module


class PerArrayLayout(_BaseLayout):
    """Each whole array lives in one module: round-robin by declaration
    order, or pinned explicitly via ``assignments`` (validated against
    the module range the way ``SingleModuleLayout`` validates its
    ``module_index``)."""

    def __init__(
        self,
        arrays: Sequence[str],
        k: int,
        assignments: Mapping[str, int] | None = None,
    ):
        super().__init__(arrays, k)
        self._pinned: dict[str, int] = {}
        for name, module_index in (assignments or {}).items():
            if name not in self.base:
                raise UnknownArrayError(f"unknown array {name!r}")
            self._pinned[name] = self._check_module_index(
                module_index, f"module for array {name!r}"
            )

    def module(self, array: str, index: int) -> int:
        del index
        base = self._base_of(array)
        pinned = self._pinned.get(array)
        return pinned if pinned is not None else base % self.k


class SkewedLayout(_BaseLayout):
    """Digit-sum skew: ``(base + i + digitsum_k(i // k)) mod k``.

    The classic ``i + i // k`` skew fails on strides that are multiples
    of k acting through the carry (e.g. k=2, stride 4: ``4j + 2j = 6j``
    is always even).  Adding the full base-k digit sum of ``i // k``
    perturbs every power-of-two stride for every k, because successive
    stride-s indices change some digit of ``i // k``.
    """

    def module(self, array: str, index: int) -> int:
        k = self.k
        return (self._base_of(array) + index + digit_skew(index // k, k)) % k


LAYOUTS = {
    "interleaved": InterleavedLayout,
    "single": SingleModuleLayout,
    "per_array": PerArrayLayout,
    "skewed": SkewedLayout,
}


def validate_layout_name(name: str) -> str:
    """Central layout-name validation: every entry point that accepts a
    layout string funnels through here."""
    if name not in LAYOUTS:
        raise ValueError(
            f"unknown layout {name!r} (valid: {sorted(LAYOUTS)})"
        )
    return name


def make_layout(name: str, arrays: Sequence[str], k: int) -> ArrayLayout:
    cls = LAYOUTS[validate_layout_name(name)]
    return cls(arrays, k)


# --------------------------------------------------------------------------
# Parameterized per-array layouts (the optimizer's search space)
# --------------------------------------------------------------------------

#: Spec kinds: 'interleaved'/'skewed' use ``base`` as a module offset;
#: 'module' pins the whole array into module ``base``.
SPEC_KINDS = ("interleaved", "skewed", "module")


@dataclass(frozen=True, slots=True)
class LayoutSpec:
    """The layout of one array: a policy plus its free parameter."""

    kind: str
    base: int = 0

    def validate(self, k: int) -> "LayoutSpec":
        if self.kind not in SPEC_KINDS:
            raise ValueError(
                f"unknown layout-spec kind {self.kind!r} "
                f"(valid: {list(SPEC_KINDS)})"
            )
        if not 0 <= self.base < k:
            raise ValueError(
                f"layout-spec base {self.base} out of range for k={k}"
            )
        return self

    def module_of(self, index: int, k: int) -> int:
        if self.kind == "module":
            return self.base
        if self.kind == "skewed":
            return (self.base + index + digit_skew(index // k, k)) % k
        return (self.base + index) % k


class PlannedLayout(_BaseLayout):
    """Per-array :class:`LayoutSpec` mapping chosen by the optimizer.

    Arrays without a spec fall back to plain interleaving with their
    declaration-order base — an empty spec table *is* the default
    :class:`InterleavedLayout`.
    """

    def __init__(
        self,
        arrays: Sequence[str],
        k: int,
        specs: Mapping[str, LayoutSpec] | None = None,
    ):
        super().__init__(arrays, k)
        self.specs: dict[str, LayoutSpec] = {}
        for name, spec in (specs or {}).items():
            if name not in self.base:
                raise UnknownArrayError(f"unknown array {name!r}")
            self.specs[name] = spec.validate(k)

    def module(self, array: str, index: int) -> int:
        base = self._base_of(array)
        spec = self.specs.get(array)
        if spec is None:
            return (base + index) % self.k
        return spec.module_of(index, self.k)
