"""Array storage layouts across memory modules.

Scalars are placed by the paper's algorithms; array *elements* land in
modules according to a layout policy fixed at compile time:

- :class:`InterleavedLayout` — element ``a[i]`` lives in module
  ``(base_a + i) mod k`` (low-order interleaving, the practical default
  the paper assumes for t_ave: "the elements of the same array will be
  distributed uniformly among the memory modules");
- :class:`SingleModuleLayout` — every array in one module (the paper's
  pathological t_max scenario);
- :class:`PerArrayLayout` — each whole array in its own module
  (round-robin across arrays);
- :class:`SkewedLayout` — module ``(base_a + i + i // k) mod k``,
  the classic skew that also spreads power-of-two strides (Budnik-Kuck /
  Harper-Jump lineage).
"""

from __future__ import annotations

from typing import Protocol, Sequence


class ArrayLayout(Protocol):
    """Maps an array-element access to a memory module."""

    def module(self, array: str, index: int) -> int: ...


class _BaseLayout:
    """Common machinery: arrays get deterministic base offsets in
    declaration order."""

    def __init__(self, arrays: Sequence[str], k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.base = {name: i for i, name in enumerate(arrays)}

    def _base_of(self, array: str) -> int:
        try:
            return self.base[array]
        except KeyError:
            raise KeyError(f"unknown array {array!r}") from None


class InterleavedLayout(_BaseLayout):
    def module(self, array: str, index: int) -> int:
        return (self._base_of(array) + index) % self.k


class SingleModuleLayout(_BaseLayout):
    def __init__(self, arrays: Sequence[str], k: int, module_index: int = 0):
        super().__init__(arrays, k)
        if not 0 <= module_index < k:
            raise ValueError("module_index out of range")
        self._module = module_index

    def module(self, array: str, index: int) -> int:
        self._base_of(array)
        return self._module


class PerArrayLayout(_BaseLayout):
    def module(self, array: str, index: int) -> int:
        del index
        return self._base_of(array) % self.k


class SkewedLayout(_BaseLayout):
    def module(self, array: str, index: int) -> int:
        return (self._base_of(array) + index + index // self.k) % self.k


LAYOUTS = {
    "interleaved": InterleavedLayout,
    "single": SingleModuleLayout,
    "per_array": PerArrayLayout,
    "skewed": SkewedLayout,
}


def make_layout(name: str, arrays: Sequence[str], k: int) -> ArrayLayout:
    try:
        cls = LAYOUTS[name]
    except KeyError:
        raise ValueError(f"unknown layout {name!r}") from None
    return cls(arrays, k)
