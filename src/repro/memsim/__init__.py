"""Parallel-memory simulator: module layouts, exact load distributions,
and the Δ-model transfer-time accounting of the paper's §3."""

from .distribution import (
    expected_max_load,
    max_load_distribution,
    min_possible_max_load,
)
from .interleave import (
    LAYOUTS,
    SPEC_KINDS,
    ArrayLayout,
    InterleavedLayout,
    LayoutSpec,
    PerArrayLayout,
    PlannedLayout,
    SingleModuleLayout,
    SkewedLayout,
    UnknownArrayError,
    digit_skew,
    make_layout,
    validate_layout_name,
)
from .simulator import (
    MemoryReport,
    MemorySimulator,
    instruction_distribution,
    scalar_load_vector,
)

__all__ = [
    "expected_max_load",
    "max_load_distribution",
    "min_possible_max_load",
    "LAYOUTS",
    "SPEC_KINDS",
    "ArrayLayout",
    "InterleavedLayout",
    "LayoutSpec",
    "PerArrayLayout",
    "PlannedLayout",
    "SingleModuleLayout",
    "SkewedLayout",
    "UnknownArrayError",
    "digit_skew",
    "make_layout",
    "validate_layout_name",
    "MemoryReport",
    "MemorySimulator",
    "instruction_distribution",
    "scalar_load_vector",
]
