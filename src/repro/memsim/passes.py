"""Simulation pass: execute a schedule under an allocation + layout.

:func:`simulate_program` is the single implementation behind both the
``simulate`` pass and the :func:`repro.pipeline.simulate` facade.  The
pass is declared ``cacheable=False``: it consumes the runtime ``inputs``
artifact, which deliberately stays outside the fingerprint chain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..passes.artifacts import SimulationResult
from ..passes.manager import Pass, PassContext
from .interleave import make_layout
from .simulator import MemorySimulator

if TYPE_CHECKING:
    from ..core.allocation import Allocation
    from ..core.arraylayout import ArrayLayoutPlan
    from ..ir.cfg import Cfg
    from ..ir.rename import RenamedProgram
    from ..liw.schedule import Schedule


def simulate_program(
    cfg: "Cfg",
    renamed: "RenamedProgram",
    schedule: "Schedule",
    allocation: "Allocation",
    inputs: list[object] | None = None,
    layout: str = "interleaved",
    delta: float = 1.0,
    max_cycles: int = 5_000_000,
    scheduled_transfers: bool = False,
    plan: "ArrayLayoutPlan | None" = None,
) -> SimulationResult:
    """Execute a compiled program under an allocation and array layout,
    collecting the paper's transfer-time statistics.

    With ``scheduled_transfers`` the duplicated values are filled by
    compile-time-scheduled Transfer operations instead of eager
    multi-module writes (see :mod:`repro.liw.transfers`).

    With ``plan`` (an :class:`~repro.core.arraylayout.ArrayLayoutPlan`)
    the schedule's recorded moves are replayed on a fresh copy and the
    plan's per-array layouts replace ``layout`` — the measurement is
    exact execution under the optimized configuration, not a model.
    """
    from ..liw.executor import LiwExecutor

    machine = schedule.machine
    arrays = sorted(cfg.arrays)
    if plan is not None:
        schedule = plan.apply_to(schedule)
        layout_obj = plan.build_layout(arrays)
    else:
        layout_obj = make_layout(layout, arrays, machine.k)
    if scheduled_transfers:
        from ..liw.transfers import insert_transfers

        schedule, _ = insert_transfers(schedule, allocation)
    sim = MemorySimulator(
        allocation,
        layout_obj,
        machine.k,
        delta=delta,
        eager_copies=not scheduled_transfers,
    )
    executor = LiwExecutor(
        schedule,
        inputs,
        max_cycles,
        observers=[sim],
        initial_values=renamed.initial_values(),
    )
    result = executor.run()
    return SimulationResult(result, sim.report())


def _run_simulate(ctx: PassContext) -> None:
    opts = ctx.options
    storage = ctx.get("storage")
    inputs = ctx.get_optional("inputs")
    result = simulate_program(
        ctx.get("cfg"),  # type: ignore[arg-type]
        ctx.get("renamed"),  # type: ignore[arg-type]
        ctx.get("schedule"),  # type: ignore[arg-type]
        storage.allocation,  # type: ignore[attr-defined]
        list(inputs) if inputs is not None else None,  # type: ignore[call-overload]
        layout=opts.layout,
        delta=opts.delta,
        max_cycles=opts.max_cycles,
        scheduled_transfers=opts.scheduled_transfers,
        plan=ctx.get_optional("array_plan"),  # type: ignore[arg-type]
    )
    ctx.set("simulation", result)
    ctx.count("cycles", result.cycles)
    ctx.count("stall_time", result.memory.stall_time)
    ctx.count("outputs", len(result.outputs))


SIMULATE = Pass(
    name="simulate",
    run=_run_simulate,
    reads=("cfg", "renamed", "schedule", "storage"),
    writes=("simulation",),
    config_keys=("layout", "delta", "max_cycles", "scheduled_transfers"),
    cacheable=False,
)

PASSES = (SIMULATE,)
