"""Parallel-memory simulator: turns executed long instructions into the
paper's transfer-time measures.

Model (paper §3): each long instruction has one memory-transfer phase in
which every module can serve one access per Δ.  An instruction whose
accesses pile up ``L`` deep on some module spends ``L·Δ`` on transfers.
The accesses of one instruction are

- its scalar *source* fetches — one module per value, chosen among the
  value's copies by distinct-representative matching (the fetch unit
  exploits duplicates, which is how the paper's allocation pays off);
- its scalar *destination* writes — every copy of the destination is
  written (a duplicated value's extra stores are the run-time price of
  replication);
- its array-element touches — modules known only at run time.

Four aggregate times are reported:

- **t_actual** — array modules from the concrete layout in force;
- **t_min** — arrays steered so they never conflict (paper's t_min);
- **t_max** — all arrays in one (worst-choice) module (paper's t_max);
- **t_ave** — arrays uniformly random: exact ``Σ i·Δ·p(i)`` via
  :mod:`repro.memsim.distribution`.

The simulator is an executor observer: attach it to
:class:`repro.liw.LiwExecutor` and read :meth:`report` afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.allocation import Allocation
from ..core.verify import find_sdr
from ..liw.executor import AccessEvent
from .distribution import (
    expected_max_load,
    max_load_distribution,
    min_possible_max_load,
)
from .interleave import ArrayLayout


def scalar_load_vector(
    sources: frozenset[int],
    dests: frozenset[int],
    alloc: Allocation,
    k: int,
    eager_copies: bool = True,
) -> tuple[int, ...]:
    """Per-module access counts for an instruction's scalar operands.

    With ``eager_copies`` (default) destination values write all their
    copies in this cycle; otherwise only the primary copy is written and
    the remaining copies are filled by scheduled Transfer operations
    (:mod:`repro.liw.transfers`).  Source fetches pick one copy each,
    preferring a conflict-free matching that also avoids the destination
    modules; failing that, a most-constrained-first greedy fill models
    the hardware serialising.
    """
    loads = [0] * k
    for v in dests:
        mods = alloc.modules(v)
        if not mods:
            raise ValueError(f"unplaced scalar destination: {v}")
        if eager_copies:
            for m in mods:
                loads[m] += 1
        else:
            loads[alloc.primary(v)] += 1

    pure_sources = sorted(sources - dests)
    if not pure_sources:
        return tuple(loads)
    sets = [alloc.modules(v) for v in pure_sources]
    if any(not s for s in sets):
        missing = [v for v, s in zip(pure_sources, sets) if not s]
        raise ValueError(f"unplaced scalar operands: {missing}")

    blocked = {m for m, c in enumerate(loads) if c > 0}
    reduced = [s - blocked for s in sets]
    if all(reduced):
        sdr = find_sdr(reduced)
        if sdr is not None:
            for m in sdr:
                loads[m] += 1
            return tuple(loads)
    sdr = find_sdr(sets)
    if sdr is not None:
        for m in sdr:
            loads[m] += 1
        return tuple(loads)
    # Residual conflict: serve most-constrained operands first, each from
    # its least-loaded module.
    for s in sorted(sets, key=len):
        m = min(s, key=lambda m: (loads[m], m))
        loads[m] += 1
    return tuple(loads)


@dataclass(slots=True)
class MemoryReport:
    """Aggregate transfer-time measures over one execution."""

    delta: float
    k: int
    instructions: int  # executed long instructions
    transfer_instructions: int  # those touching memory at all
    scalar_accesses: int
    array_accesses: int
    t_actual: float
    t_min: float
    t_max: float
    t_ave: float
    scalar_conflict_instructions: int  # scalars alone pile up (residual)
    actual_conflict_instructions: int  # actual transfer load > 1

    @property
    def ave_ratio(self) -> float:
        """The paper's Table 2 ``t_ave / t_min``."""
        return self.t_ave / self.t_min if self.t_min else 1.0

    @property
    def max_ratio(self) -> float:
        """The paper's Table 2 ``t_max / t_min``."""
        return self.t_max / self.t_min if self.t_min else 1.0

    @property
    def actual_ratio(self) -> float:
        return self.t_actual / self.t_min if self.t_min else 1.0

    @property
    def stall_time(self) -> float:
        """Transfer time beyond one Δ per transferring instruction."""
        return self.t_actual - self.delta * self.transfer_instructions


class MemorySimulator:
    """Observer accumulating the Δ-model statistics of one execution."""

    def __init__(
        self,
        alloc: Allocation,
        layout: ArrayLayout,
        k: int,
        delta: float = 1.0,
        eager_copies: bool = True,
    ):
        self._alloc = alloc
        self._layout = layout
        self._k = k
        self._delta = delta
        self._eager_copies = eager_copies

        self._vec_cache: dict[
            tuple[frozenset[int], frozenset[int]], tuple[int, ...]
        ] = {}
        self.instructions = 0
        self.transfer_instructions = 0
        self.scalar_accesses = 0
        self.array_accesses = 0
        self.t_actual = 0.0
        self.t_min = 0.0
        self.t_ave = 0.0
        self._t_max_per_module = [0.0] * k
        self.scalar_conflicts = 0
        self.actual_conflicts = 0

    # -- observer protocol ----------------------------------------------

    def __call__(self, event: AccessEvent) -> None:
        self.instructions += 1
        key = (event.scalar_sources, event.scalar_dests)
        vec = self._vec_cache.get(key)
        if vec is None:
            vec = scalar_load_vector(
                event.scalar_sources,
                event.scalar_dests,
                self._alloc,
                self._k,
                self._eager_copies,
            )
            self._vec_cache[key] = vec
        if event.transfers:
            # a transfer reads the source module and writes the destination
            mutable = list(vec)
            for _, src, dst in event.transfers:
                mutable[src] += 1
                mutable[dst] += 1
            vec = tuple(mutable)
        n_arr = len(event.array_touches)
        n_scalar = sum(vec)
        if n_arr == 0 and n_scalar == 0:
            return

        self.transfer_instructions += 1
        self.scalar_accesses += n_scalar
        self.array_accesses += n_arr
        scalar_max = max(vec)
        if scalar_max > 1:
            self.scalar_conflicts += 1

        delta = self._delta
        self.t_min += delta * min_possible_max_load(vec, n_arr)
        self.t_ave += delta * expected_max_load(vec, n_arr)
        # t_max: all arrays stacked in module m, for every candidate m.
        for m in range(self._k):
            self._t_max_per_module[m] += delta * max(scalar_max, vec[m] + n_arr)

        actual = list(vec)
        for touch in event.array_touches:
            actual[self._layout.module(touch.array, touch.index)] += 1
        actual_max = max(actual)
        self.t_actual += delta * actual_max
        if actual_max > 1:
            self.actual_conflicts += 1

    # -- results ------------------------------------------------------------

    def report(self) -> MemoryReport:
        return MemoryReport(
            delta=self._delta,
            k=self._k,
            instructions=self.instructions,
            transfer_instructions=self.transfer_instructions,
            scalar_accesses=self.scalar_accesses,
            array_accesses=self.array_accesses,
            t_actual=self.t_actual,
            t_min=self.t_min,
            t_max=max(self._t_max_per_module) if self._k else 0.0,
            t_ave=self.t_ave,
            scalar_conflict_instructions=self.scalar_conflicts,
            actual_conflict_instructions=self.actual_conflicts,
        )


def instruction_distribution(
    sources: frozenset[int],
    dests: frozenset[int],
    n_array: int,
    alloc: Allocation,
    k: int,
) -> dict[int, float]:
    """p(i) for one instruction — exposed for tests and the docs."""
    vec = scalar_load_vector(sources, dests, alloc, k)
    return max_load_distribution(vec, n_array)
