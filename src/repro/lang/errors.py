"""Diagnostics for the mini-language front end.

All front-end failures raise :class:`LangError` (or a subclass) carrying a
source location, so callers can render ``file:line:col`` style messages.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A (line, column) position in a source string, both 1-based."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class LangError(Exception):
    """Base class for all front-end errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        where = f" at {location}" if location is not None else ""
        super().__init__(f"{message}{where}")


class LexError(LangError):
    """Raised on an unrecognised character or malformed literal."""


class ParseError(LangError):
    """Raised when the token stream does not match the grammar."""


class SemanticError(LangError):
    """Raised on undeclared names, type mismatches, or arity errors."""
