"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    # literals / identifiers
    IDENT = "identifier"
    INT = "integer literal"
    REAL = "real literal"

    # keywords
    PROGRAM = "program"
    VAR = "var"
    BEGIN = "begin"
    END = "end"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    WHILE = "while"
    DO = "do"
    FOR = "for"
    TO = "to"
    DOWNTO = "downto"
    ARRAY = "array"
    OF = "of"
    KW_INT = "int"
    KW_REAL = "real"
    KW_BOOL = "bool"
    TRUE = "true"
    FALSE = "false"
    AND = "and"
    OR = "or"
    NOT = "not"
    DIV = "div"
    MOD = "mod"
    READ = "read"
    WRITE = "write"
    BREAK = "break"
    CONTINUE = "continue"

    # punctuation / operators
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    ASSIGN = ":="
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    EOF = "end of input"


#: Keyword spelling -> token kind.
KEYWORDS: dict[str, TokenKind] = {
    "program": TokenKind.PROGRAM,
    "var": TokenKind.VAR,
    "begin": TokenKind.BEGIN,
    "end": TokenKind.END,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "do": TokenKind.DO,
    "for": TokenKind.FOR,
    "to": TokenKind.TO,
    "downto": TokenKind.DOWNTO,
    "array": TokenKind.ARRAY,
    "of": TokenKind.OF,
    "int": TokenKind.KW_INT,
    "real": TokenKind.KW_REAL,
    "bool": TokenKind.KW_BOOL,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
    "div": TokenKind.DIV,
    "mod": TokenKind.MOD,
    "read": TokenKind.READ,
    "write": TokenKind.WRITE,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    ``value`` holds the decoded payload: the identifier string for IDENT,
    an ``int`` for INT, a ``float`` for REAL, and ``None`` otherwise.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
