"""Abstract syntax tree for the mini language.

Nodes are plain dataclasses; expression nodes gain a ``type`` attribute
(:class:`Type`) during semantic analysis (:mod:`repro.lang.sema`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import SourceLocation


class BaseType(enum.Enum):
    INT = "int"
    REAL = "real"
    BOOL = "bool"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Type:
    """A scalar type, or an array of a scalar element type."""

    base: BaseType
    array_size: int | None = None  # None => scalar

    @property
    def is_array(self) -> bool:
        return self.array_size is not None

    def element(self) -> "Type":
        if not self.is_array:
            raise ValueError("element() on a scalar type")
        return Type(self.base)

    def __str__(self) -> str:
        if self.is_array:
            return f"array[{self.array_size}] of {self.base}"
        return str(self.base)


INT = Type(BaseType.INT)
REAL = Type(BaseType.REAL)
BOOL = Type(BaseType.BOOL)


@dataclass(slots=True)
class Node:
    location: SourceLocation


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Expr(Node):
    """Base class of expressions; ``type`` is filled in by sema."""

    type: Type | None = field(default=None, init=False)


@dataclass(slots=True)
class IntLit(Expr):
    value: int


@dataclass(slots=True)
class RealLit(Expr):
    value: float


@dataclass(slots=True)
class BoolLit(Expr):
    value: bool


@dataclass(slots=True)
class VarRef(Expr):
    """A reference to a scalar variable (or a whole array in sema errors)."""

    name: str


@dataclass(slots=True)
class IndexRef(Expr):
    """``name[index]`` — reading one array element."""

    name: str
    index: Expr


@dataclass(slots=True)
class UnaryOp(Expr):
    op: str  # '-', '+', 'not'
    operand: Expr


@dataclass(slots=True)
class BinaryOp(Expr):
    op: str  # + - * / div mod = <> < <= > >= and or
    left: Expr
    right: Expr


@dataclass(slots=True)
class Call(Expr):
    """Intrinsic call such as ``sqrt(x)`` — see sema.INTRINSICS."""

    name: str
    args: list[Expr]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt(Node):
    pass


@dataclass(slots=True)
class Assign(Stmt):
    """``target := value`` where target is VarRef or IndexRef."""

    target: Expr
    value: Expr


@dataclass(slots=True)
class If(Stmt):
    cond: Expr
    then_body: Stmt
    else_body: Stmt | None


@dataclass(slots=True)
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass(slots=True)
class For(Stmt):
    """``for var := lo to|downto hi do body``; bounds evaluated once."""

    var: str
    start: Expr
    stop: Expr
    downto: bool
    body: Stmt


@dataclass(slots=True)
class Block(Stmt):
    body: list[Stmt]


@dataclass(slots=True)
class Write(Stmt):
    value: Expr


@dataclass(slots=True)
class Read(Stmt):
    target: Expr  # VarRef or IndexRef


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Declarations / program
# --------------------------------------------------------------------------


@dataclass(slots=True)
class VarDecl(Node):
    names: list[str]
    type: Type


@dataclass(slots=True)
class Program(Node):
    name: str
    decls: list[VarDecl]
    body: Block
