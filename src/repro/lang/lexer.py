"""Hand-written lexer for the mini language.

The language is Pascal-flavoured: ``{ ... }`` block comments,
``//`` line comments, case-sensitive keywords, ``:=`` assignment.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_SINGLE = {
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "=": TokenKind.EQ,
}


class Lexer:
    """Converts a source string into a list of tokens (EOF-terminated)."""

    def __init__(self, source: str):
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self._line, self._col)

    def _peek(self, ahead: int = 0) -> str:
        i = self._pos + ahead
        return self._src[i] if i < len(self._src) else ""

    def _advance(self) -> str:
        ch = self._src[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _skip_trivia(self) -> None:
        while self._pos < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "{":
                start = self._loc()
                self._advance()
                while self._peek() != "}":
                    if self._pos >= len(self._src):
                        raise LexError("unterminated comment", start)
                    self._advance()
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_real = False
        # A '.' is part of the number only when followed by a digit, so the
        # terminating 'end.' of a program never merges into a literal.
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_real = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._src[start : self._pos]
        if is_real:
            return Token(TokenKind.REAL, text, loc, float(text))
        return Token(TokenKind.INT, text, loc, int(text))

    def _lex_word(self) -> Token:
        loc = self._loc()
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._src[start : self._pos]
        kind = KEYWORDS.get(text)
        if kind is not None:
            return Token(kind, text, loc)
        return Token(TokenKind.IDENT, text, loc, text)

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        if self._pos >= len(self._src):
            return Token(TokenKind.EOF, "", loc)
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        if ch == ":":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.ASSIGN, ":=", loc)
            return Token(TokenKind.COLON, ":", loc)
        if ch == "<":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.LE, "<=", loc)
            if self._peek() == ">":
                self._advance()
                return Token(TokenKind.NE, "<>", loc)
            return Token(TokenKind.LT, "<", loc)
        if ch == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.GE, ">=", loc)
            return Token(TokenKind.GT, ">", loc)
        if ch in _SINGLE:
            self._advance()
            return Token(_SINGLE[ch], ch, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            tok = self.next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; the returned list always ends with an EOF token."""
    return Lexer(source).tokenize()
