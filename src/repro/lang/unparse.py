"""AST -> source text (unparser).

Produces mini-language source that re-parses to an equivalent AST; used
by the random-program fuzzer and handy for dumping transformed
programs (e.g. after unrolling).
"""

from __future__ import annotations

from . import ast_nodes as ast

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "div": 6, "mod": 6,
}


def _expr(node: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(node, ast.IntLit):
        return str(node.value)
    if isinstance(node, ast.RealLit):
        text = repr(node.value)
        # ensure a decimal point or exponent so it lexes as a real
        if "." not in text and "e" not in text and "inf" not in text:
            text += ".0"
        return text
    if isinstance(node, ast.BoolLit):
        return "true" if node.value else "false"
    if isinstance(node, ast.VarRef):
        return node.name
    if isinstance(node, ast.IndexRef):
        return f"{node.name}[{_expr(node.index)}]"
    if isinstance(node, ast.UnaryOp):
        if node.op == "not":
            inner = _expr(node.operand, 3)
            return f"not {inner}"
        inner = _expr(node.operand, 7)
        return f"{node.op}{inner}"
    if isinstance(node, ast.BinaryOp):
        prec = _PRECEDENCE[node.op]
        left = _expr(node.left, prec)
        right = _expr(node.right, prec + 1)  # left associative
        text = f"{left} {node.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(node, ast.Call):
        args = ", ".join(_expr(a) for a in node.args)
        return f"{node.name}({args})"
    raise TypeError(f"cannot unparse {type(node).__name__}")  # pragma: no cover


def _stmt(node: ast.Stmt, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(node, ast.Assign):
        return [f"{pad}{_expr(node.target)} := {_expr(node.value)}"]
    if isinstance(node, ast.If):
        lines = [f"{pad}if {_expr(node.cond)} then"]
        lines += _block_or_stmt(node.then_body, indent + 1)
        if node.else_body is not None:
            lines.append(f"{pad}else")
            lines += _block_or_stmt(node.else_body, indent + 1)
        return lines
    if isinstance(node, ast.While):
        lines = [f"{pad}while {_expr(node.cond)} do"]
        lines += _block_or_stmt(node.body, indent + 1)
        return lines
    if isinstance(node, ast.For):
        direction = "downto" if node.downto else "to"
        lines = [
            f"{pad}for {node.var} := {_expr(node.start)} "
            f"{direction} {_expr(node.stop)} do"
        ]
        lines += _block_or_stmt(node.body, indent + 1)
        return lines
    if isinstance(node, ast.Block):
        lines = [f"{pad}begin"]
        body: list[str] = []
        for child in node.body:
            body += _stmt(child, indent + 1)
            body[-1] += ";"
        if body:
            body[-1] = body[-1][:-1]  # last semicolon optional; drop it
        lines += body
        lines.append(f"{pad}end")
        return lines
    if isinstance(node, ast.Write):
        return [f"{pad}write({_expr(node.value)})"]
    if isinstance(node, ast.Read):
        return [f"{pad}read({_expr(node.target)})"]
    if isinstance(node, ast.Break):
        return [f"{pad}break"]
    if isinstance(node, ast.Continue):
        return [f"{pad}continue"]
    raise TypeError(f"cannot unparse {type(node).__name__}")  # pragma: no cover


def _block_or_stmt(node: ast.Stmt, indent: int) -> list[str]:
    if isinstance(node, ast.Block):
        return _stmt(node, indent)
    return _stmt(node, indent)


def unparse(program: ast.Program) -> str:
    """Render a program AST back to parseable source text."""
    lines = [f"program {program.name};"]
    if program.decls:
        lines.append("var")
        for decl in program.decls:
            names = ", ".join(decl.names)
            lines.append(f"  {names}: {decl.type};")
    body = _stmt(program.body, 0)
    lines += body
    lines.append(".")
    return "\n".join(lines)
