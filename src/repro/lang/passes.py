"""Front-end passes: parsing and semantic analysis.

Pass wrappers over :func:`repro.lang.parser.parse` and
:func:`repro.lang.sema.analyze`, registered into the standard pipeline
by :mod:`repro.passes.registry`.
"""

from __future__ import annotations

from ..passes.manager import Pass, PassContext
from .parser import parse
from .sema import analyze


def _run_parse(ctx: PassContext) -> None:
    tree = parse(ctx.get("source"))  # type: ignore[arg-type]
    ctx.set("ast", tree)
    ctx.count("declarations", len(tree.decls))
    ctx.count("statements", len(tree.body.body))


def _run_sema(ctx: PassContext) -> None:
    symbols = analyze(ctx.get("ast"))  # type: ignore[arg-type]
    ctx.set("symbols", symbols)


PARSE = Pass(
    name="parse",
    run=_run_parse,
    reads=("source",),
    writes=("ast",),
)

SEMA = Pass(
    name="sema",
    run=_run_sema,
    reads=("ast",),
    writes=("symbols",),
)

PASSES = (PARSE, SEMA)
