"""Front end for the mini source language (lexer, parser, semantic checks)."""

from . import ast_nodes
from .errors import LangError, LexError, ParseError, SemanticError, SourceLocation
from .lexer import tokenize
from .parser import parse, parse_expression
from .sema import INTRINSICS, Analyzer, SymbolTable, analyze

__all__ = [
    "ast_nodes",
    "LangError",
    "LexError",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "tokenize",
    "parse",
    "parse_expression",
    "analyze",
    "Analyzer",
    "SymbolTable",
    "INTRINSICS",
]
