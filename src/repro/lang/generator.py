"""Random program generator for differential testing.

Generates type-correct, terminating, exception-free mini-language
programs: every compiler stage (lowering, unrolling, CFG simplification,
renaming, scheduling, lock-step execution) must agree with the reference
interpreter on the outputs.  Guarantees by construction:

- all loops are ``for`` loops with literal bounds (≤ 8 iterations,
  nesting ≤ 2) — termination;
- ``div``/``mod`` only by non-zero literals — no division by zero;
- array subscripts are enclosing ``for`` variables whose bounds fit the
  array, or in-range literals — no bounds errors;
- loop-carried integers are reduced ``mod 9973`` — no huge-int blowup;
- real arithmetic avoids ``ln``/``sqrt``/``exp`` and division by
  variables — no domain errors or inf/nan surprises from the fuzzer's
  value ranges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from . import ast_nodes as ast
from .errors import SourceLocation

_LOC = SourceLocation(0, 0)

ARRAY_SIZE = 8
MODULUS = 9973


@dataclass
class _Scope:
    """What the generator may currently reference.

    ``int_vars`` are readable; ``assignable_ints`` excludes active loop
    variables (assigning a loop variable would break both termination
    and the in-range-subscript guarantee).
    """

    int_vars: list[str]
    real_vars: list[str]
    arrays: list[str]
    #: for variables currently usable as array subscripts
    index_vars: list[str] = field(default_factory=list)
    loop_depth: int = 0
    assignable_ints: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.assignable_ints:
            self.assignable_ints = [
                v for v in self.int_vars if v not in self.index_vars
            ]


class ProgramGenerator:
    """Generator over an explicit :class:`random.Random`.

    Either pass ``rng`` (sole source of randomness — no module-level
    ``random`` state is ever touched, so generation is reproducible
    across processes and interleavings) or ``seed`` to have one built.
    """

    def __init__(
        self,
        seed: int | None = None,
        max_statements: int = 12,
        rng: random.Random | None = None,
    ):
        if rng is not None and seed is not None:
            raise ValueError("pass either seed or rng, not both")
        self.rng = rng if rng is not None else random.Random(seed)
        self.max_statements = max_statements
        self._loop_var_count = 0

    # -- expressions ----------------------------------------------------

    def int_expr(self, scope: _Scope, depth: int = 0) -> ast.Expr:
        rng = self.rng
        if depth >= 3 or rng.random() < 0.35:
            choices = ["lit"]
            if scope.int_vars:
                choices += ["var", "var"]
            if scope.arrays and scope.index_vars:
                choices.append("array")
            kind = rng.choice(choices)
            if kind == "lit":
                return ast.IntLit(_LOC, rng.randint(-20, 20))
            if kind == "var":
                return ast.VarRef(_LOC, rng.choice(scope.int_vars))
            return ast.IndexRef(
                _LOC,
                rng.choice(scope.arrays),
                ast.VarRef(_LOC, rng.choice(scope.index_vars)),
            )
        kind = rng.random()
        if kind < 0.75:
            op = rng.choice(["+", "-", "*", "+", "-"])
            return ast.BinaryOp(
                _LOC, op,
                self.int_expr(scope, depth + 1),
                self.int_expr(scope, depth + 1),
            )
        if kind < 0.9:
            op = rng.choice(["div", "mod"])
            divisor = rng.choice([2, 3, 5, 7, -3])
            return ast.BinaryOp(
                _LOC, op,
                self.int_expr(scope, depth + 1),
                ast.IntLit(_LOC, divisor),
            )
        fn = rng.choice(["abs", "min", "max"])
        if fn == "abs":
            return ast.Call(_LOC, "abs", [self.int_expr(scope, depth + 1)])
        return ast.Call(
            _LOC, fn,
            [self.int_expr(scope, depth + 1), self.int_expr(scope, depth + 1)],
        )

    def real_expr(self, scope: _Scope, depth: int = 0) -> ast.Expr:
        rng = self.rng
        if depth >= 2 or rng.random() < 0.4 or not scope.real_vars:
            if scope.real_vars and rng.random() < 0.6:
                return ast.VarRef(_LOC, rng.choice(scope.real_vars))
            return ast.RealLit(_LOC, round(rng.uniform(-4.0, 4.0), 3))
        kind = rng.random()
        if kind < 0.7:
            op = rng.choice(["+", "-", "*"])
            return ast.BinaryOp(
                _LOC, op,
                self.real_expr(scope, depth + 1),
                self.real_expr(scope, depth + 1),
            )
        if kind < 0.85:
            return ast.Call(
                _LOC, "float", [self.int_expr(scope, depth + 1)]
            )
        return ast.Call(
            _LOC, rng.choice(["min", "max"]),
            [self.real_expr(scope, depth + 1), self.real_expr(scope, depth + 1)],
        )

    def bool_expr(self, scope: _Scope) -> ast.Expr:
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "=", "<>"])
        cmp = ast.BinaryOp(
            _LOC, op, self.int_expr(scope, 1), self.int_expr(scope, 1)
        )
        if rng.random() < 0.25:
            other = ast.BinaryOp(
                _LOC, rng.choice(["<", ">"]),
                self.int_expr(scope, 2), self.int_expr(scope, 2),
            )
            return ast.BinaryOp(_LOC, rng.choice(["and", "or"]), cmp, other)
        if rng.random() < 0.15:
            return ast.UnaryOp(_LOC, "not", cmp)
        return cmp

    # -- statements ---------------------------------------------------------

    def _reduced(self, expr: ast.Expr) -> ast.Expr:
        """expr mod 9973 — keeps loop-carried integers bounded."""
        return ast.BinaryOp(_LOC, "mod", expr, ast.IntLit(_LOC, MODULUS))

    def statement(self, scope: _Scope, budget: int) -> ast.Stmt:
        rng = self.rng
        choices = ["int_assign", "int_assign", "real_assign", "write"]
        if scope.arrays and scope.index_vars:
            choices += ["array_assign", "array_assign"]
        if budget >= 3:
            choices.append("if")
            if scope.loop_depth < 2:
                choices += ["for", "for"]
        kind = rng.choice(choices)

        if kind == "int_assign":
            target = ast.VarRef(_LOC, rng.choice(scope.assignable_ints))
            value = self.int_expr(scope)
            if scope.loop_depth:
                value = self._reduced(value)
            return ast.Assign(_LOC, target, value)
        if kind == "real_assign":
            target = ast.VarRef(_LOC, rng.choice(scope.real_vars))
            return ast.Assign(_LOC, target, self.real_expr(scope))
        if kind == "array_assign":
            target = ast.IndexRef(
                _LOC,
                rng.choice(scope.arrays),
                ast.VarRef(_LOC, rng.choice(scope.index_vars)),
            )
            value = self.int_expr(scope)
            if scope.loop_depth:
                value = self._reduced(value)
            return ast.Assign(_LOC, target, value)
        if kind == "write":
            if scope.real_vars and rng.random() < 0.3:
                return ast.Write(_LOC, ast.VarRef(_LOC, rng.choice(scope.real_vars)))
            return ast.Write(_LOC, self.int_expr(scope, 1))
        if kind == "if":
            then_body = self.block(scope, budget // 2)
            else_body = (
                self.block(scope, budget // 3) if rng.random() < 0.5 else None
            )
            return ast.If(_LOC, self.bool_expr(scope), then_body, else_body)
        # for loop over a fresh index variable with array-safe bounds
        self._loop_var_count += 1
        var = f"idx{self._loop_var_count}"
        lo = rng.randint(0, 2)
        hi = rng.randint(lo, ARRAY_SIZE - 1)
        downto = rng.random() < 0.25
        inner = _Scope(
            scope.int_vars + [var],
            scope.real_vars,
            scope.arrays,
            scope.index_vars + [var],
            scope.loop_depth + 1,
            assignable_ints=list(scope.assignable_ints),
        )
        body = self.block(inner, budget // 2)
        start, stop = (hi, lo) if downto else (lo, hi)
        self._extra_index_vars.append(var)
        return ast.For(
            _LOC, var, ast.IntLit(_LOC, start), ast.IntLit(_LOC, stop),
            downto, body,
        )

    def block(self, scope: _Scope, budget: int) -> ast.Block:
        n = max(1, min(budget, self.rng.randint(1, 4)))
        return ast.Block(
            _LOC, [self.statement(scope, budget - n) for _ in range(n)]
        )

    # -- program ----------------------------------------------------------

    def generate(self) -> ast.Program:
        rng = self.rng
        self._extra_index_vars: list[str] = []
        int_vars = [f"v{i}" for i in range(rng.randint(2, 4))]
        real_vars = [f"r{i}" for i in range(rng.randint(1, 2))]
        arrays = ["arr"] if rng.random() < 0.8 else []
        scope = _Scope(list(int_vars), list(real_vars), arrays)

        body: list[ast.Stmt] = []
        # initialise every scalar so output is deterministic regardless
        # of evaluation details
        for v in int_vars:
            body.append(
                ast.Assign(_LOC, ast.VarRef(_LOC, v),
                           ast.IntLit(_LOC, rng.randint(-9, 9)))
            )
        for v in real_vars:
            body.append(
                ast.Assign(_LOC, ast.VarRef(_LOC, v),
                           ast.RealLit(_LOC, round(rng.uniform(-2, 2), 2)))
            )
        for _ in range(rng.randint(3, self.max_statements)):
            body.append(self.statement(scope, 8))
        # final observations
        for v in int_vars:
            body.append(ast.Write(_LOC, ast.VarRef(_LOC, v)))
        for v in real_vars:
            body.append(ast.Write(_LOC, ast.VarRef(_LOC, v)))
        if arrays and self._extra_index_vars:
            idx = ast.IntLit(_LOC, rng.randrange(ARRAY_SIZE))
            body.append(ast.Write(_LOC, ast.IndexRef(_LOC, "arr", idx)))

        decls = [
            ast.VarDecl(_LOC, int_vars + self._extra_index_vars, ast.INT),
            ast.VarDecl(_LOC, real_vars, ast.REAL),
        ]
        if arrays:
            decls.append(
                ast.VarDecl(
                    _LOC, arrays, ast.Type(ast.BaseType.INT, ARRAY_SIZE)
                )
            )
        return ast.Program(_LOC, f"fuzz{rng.randrange(10**6)}", decls,
                           ast.Block(_LOC, body))


def random_program(
    seed: int | None = None,
    max_statements: int = 12,
    rng: random.Random | None = None,
) -> ast.Program:
    """A random, valid, terminating program AST.

    Generation draws exclusively from the seeded ``random.Random``
    (given, or built from ``seed``): the same seed always yields the
    same AST, byte-identical under :func:`random_source`.
    """
    return ProgramGenerator(seed, max_statements, rng).generate()


def random_source(
    seed: int | None = None,
    max_statements: int = 12,
    rng: random.Random | None = None,
) -> str:
    """Source text of a random program (via the unparser)."""
    from .unparse import unparse

    return unparse(random_program(seed, max_statements, rng))
