"""Recursive-descent parser producing the AST of :mod:`repro.lang.ast_nodes`.

Grammar (EBNF):

    program    := "program" IDENT ";" [vardecls] block "."
    vardecls   := "var" { identlist ":" type ";" }
    identlist  := IDENT { "," IDENT }
    type       := "int" | "real" | "bool" | "array" "[" INT "]" "of" base
    block      := "begin" { stmt ";" } "end"
    stmt       := assign | if | while | for | write | read | block
                | "break" | "continue"
    assign     := lvalue ":=" expr
    if         := "if" expr "then" stmt [ "else" stmt ]
    while      := "while" expr "do" stmt
    for        := "for" IDENT ":=" expr ("to"|"downto") expr "do" stmt
    expr       := orexpr
    orexpr     := andexpr { "or" andexpr }
    andexpr    := notexpr { "and" notexpr }
    notexpr    := "not" notexpr | rel
    rel        := add [ relop add ]
    add        := mul { ("+"|"-") mul }
    mul        := unary { ("*"|"/"|"div"|"mod") unary }
    unary      := ("-"|"+") unary | primary
    primary    := INT | REAL | "true" | "false" | "(" expr ")"
                | IDENT [ "[" expr "]" | "(" args ")" ]
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind

_REL_OPS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "<>",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_ADD_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}

_MUL_OPS = {
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.DIV: "div",
    TokenKind.MOD: "mod",
}

_STMT_START = {
    TokenKind.IDENT,
    TokenKind.IF,
    TokenKind.WHILE,
    TokenKind.FOR,
    TokenKind.BEGIN,
    TokenKind.WRITE,
    TokenKind.READ,
    TokenKind.BREAK,
    TokenKind.CONTINUE,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text or tok.kind.value!r}",
                tok.location,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        start = self._expect(TokenKind.PROGRAM)
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.SEMI)
        decls = self._parse_vardecls() if self._at(TokenKind.VAR) else []
        body = self._parse_block()
        self._expect(TokenKind.DOT)
        self._expect(TokenKind.EOF)
        return ast.Program(start.location, name, decls, body)

    def _parse_vardecls(self) -> list[ast.VarDecl]:
        self._expect(TokenKind.VAR)
        decls: list[ast.VarDecl] = []
        while self._at(TokenKind.IDENT):
            loc = self._peek().location
            names = [self._expect(TokenKind.IDENT).text]
            while self._accept(TokenKind.COMMA):
                names.append(self._expect(TokenKind.IDENT).text)
            self._expect(TokenKind.COLON)
            typ = self._parse_type()
            self._expect(TokenKind.SEMI)
            decls.append(ast.VarDecl(loc, names, typ))
        return decls

    def _parse_type(self) -> ast.Type:
        tok = self._peek()
        if self._accept(TokenKind.KW_INT):
            return ast.INT
        if self._accept(TokenKind.KW_REAL):
            return ast.REAL
        if self._accept(TokenKind.KW_BOOL):
            return ast.BOOL
        if self._accept(TokenKind.ARRAY):
            self._expect(TokenKind.LBRACKET)
            size_tok = self._expect(TokenKind.INT)
            size = int(size_tok.value)  # type: ignore[arg-type]
            if size <= 0:
                raise ParseError("array size must be positive", size_tok.location)
            self._expect(TokenKind.RBRACKET)
            self._expect(TokenKind.OF)
            base = self._parse_type()
            if base.is_array or base.base is ast.BaseType.BOOL:
                raise ParseError(
                    "array element type must be int or real", tok.location
                )
            return ast.Type(base.base, size)
        raise ParseError(f"expected a type, found {tok.text!r}", tok.location)

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.BEGIN)
        body: list[ast.Stmt] = []
        while not self._at(TokenKind.END):
            body.append(self._parse_stmt())
            # Semicolons are statement separators; the final one is optional.
            if not self._accept(TokenKind.SEMI) and not self._at(TokenKind.END):
                tok = self._peek()
                raise ParseError(
                    f"expected ';' or 'end', found {tok.text!r}", tok.location
                )
        self._expect(TokenKind.END)
        return ast.Block(start.location, body)

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.BEGIN:
            return self._parse_block()
        if tok.kind is TokenKind.IF:
            return self._parse_if()
        if tok.kind is TokenKind.WHILE:
            return self._parse_while()
        if tok.kind is TokenKind.FOR:
            return self._parse_for()
        if tok.kind is TokenKind.WRITE:
            self._advance()
            self._expect(TokenKind.LPAREN)
            value = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return ast.Write(tok.location, value)
        if tok.kind is TokenKind.READ:
            self._advance()
            self._expect(TokenKind.LPAREN)
            target = self._parse_lvalue()
            self._expect(TokenKind.RPAREN)
            return ast.Read(tok.location, target)
        if tok.kind is TokenKind.BREAK:
            self._advance()
            return ast.Break(tok.location)
        if tok.kind is TokenKind.CONTINUE:
            self._advance()
            return ast.Continue(tok.location)
        if tok.kind is TokenKind.IDENT:
            target = self._parse_lvalue()
            self._expect(TokenKind.ASSIGN)
            value = self._parse_expr()
            return ast.Assign(tok.location, target, value)
        raise ParseError(f"expected a statement, found {tok.text!r}", tok.location)

    def _parse_if(self) -> ast.If:
        tok = self._expect(TokenKind.IF)
        cond = self._parse_expr()
        self._expect(TokenKind.THEN)
        then_body = self._parse_stmt()
        else_body = None
        if self._accept(TokenKind.ELSE):
            else_body = self._parse_stmt()
        return ast.If(tok.location, cond, then_body, else_body)

    def _parse_while(self) -> ast.While:
        tok = self._expect(TokenKind.WHILE)
        cond = self._parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_stmt()
        return ast.While(tok.location, cond, body)

    def _parse_for(self) -> ast.For:
        tok = self._expect(TokenKind.FOR)
        var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.ASSIGN)
        start = self._parse_expr()
        if self._accept(TokenKind.TO):
            downto = False
        elif self._accept(TokenKind.DOWNTO):
            downto = True
        else:
            bad = self._peek()
            raise ParseError(
                f"expected 'to' or 'downto', found {bad.text!r}", bad.location
            )
        stop = self._parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_stmt()
        return ast.For(tok.location, var, start, stop, downto, body)

    def _parse_lvalue(self) -> ast.Expr:
        tok = self._expect(TokenKind.IDENT)
        if self._accept(TokenKind.LBRACKET):
            index = self._parse_expr()
            self._expect(TokenKind.RBRACKET)
            return ast.IndexRef(tok.location, tok.text, index)
        return ast.VarRef(tok.location, tok.text)

    # -- expressions ----------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            tok = self._advance()
            right = self._parse_and()
            left = ast.BinaryOp(tok.location, "or", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at(TokenKind.AND):
            tok = self._advance()
            right = self._parse_not()
            left = ast.BinaryOp(tok.location, "and", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            tok = self._advance()
            return ast.UnaryOp(tok.location, "not", self._parse_not())
        return self._parse_rel()

    def _parse_rel(self) -> ast.Expr:
        left = self._parse_add()
        kind = self._peek().kind
        if kind in _REL_OPS:
            tok = self._advance()
            right = self._parse_add()
            return ast.BinaryOp(tok.location, _REL_OPS[kind], left, right)
        return left

    def _parse_add(self) -> ast.Expr:
        left = self._parse_mul()
        while self._peek().kind in _ADD_OPS:
            tok = self._advance()
            right = self._parse_mul()
            left = ast.BinaryOp(tok.location, _ADD_OPS[tok.kind], left, right)
        return left

    def _parse_mul(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in _MUL_OPS:
            tok = self._advance()
            right = self._parse_unary()
            left = ast.BinaryOp(tok.location, _MUL_OPS[tok.kind], left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.MINUS:
            self._advance()
            return ast.UnaryOp(tok.location, "-", self._parse_unary())
        if tok.kind is TokenKind.PLUS:
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(tok.location, int(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.REAL:
            self._advance()
            return ast.RealLit(tok.location, float(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(tok.location, True)
        if tok.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(tok.location, False)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if self._accept(TokenKind.LBRACKET):
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET)
                return ast.IndexRef(tok.location, tok.text, index)
            if self._accept(TokenKind.LPAREN):
                args: list[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self._accept(TokenKind.COMMA):
                        args.append(self._parse_expr())
                self._expect(TokenKind.RPAREN)
                return ast.Call(tok.location, tok.text, args)
            return ast.VarRef(tok.location, tok.text)
        raise ParseError(
            f"expected an expression, found {tok.text or tok.kind.value!r}",
            tok.location,
        )


def parse(source: str) -> ast.Program:
    """Parse a complete program from source text."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (handy for tests)."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expr()
    parser._expect(TokenKind.EOF)
    return expr
