"""Semantic analysis: symbol table construction and type checking.

After :func:`analyze` runs, every expression node has its ``type`` set and
all names are guaranteed declared and consistently used.  Implicit
int->real widening is inserted conceptually (recorded as the result type);
the IR builder materialises the conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast_nodes as ast
from .errors import SemanticError

#: Intrinsic name -> (argument base types, result base type).  ``None`` in
#: the argument position means "int or real" (numeric), with the result
#: following the argument type when result is ``None``.
INTRINSICS: dict[str, tuple[tuple[object, ...], object]] = {
    "abs": ((None,), None),
    "min": ((None, None), None),
    "max": ((None, None), None),
    "sqrt": ((ast.BaseType.REAL,), ast.BaseType.REAL),
    "sin": ((ast.BaseType.REAL,), ast.BaseType.REAL),
    "cos": ((ast.BaseType.REAL,), ast.BaseType.REAL),
    "exp": ((ast.BaseType.REAL,), ast.BaseType.REAL),
    "ln": ((ast.BaseType.REAL,), ast.BaseType.REAL),
    "trunc": ((ast.BaseType.REAL,), ast.BaseType.INT),
    "float": ((ast.BaseType.INT,), ast.BaseType.REAL),
}


@dataclass(frozen=True, slots=True)
class Symbol:
    name: str
    type: ast.Type


class SymbolTable:
    """Flat (single-scope) symbol table — the language has one global scope."""

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}

    def declare(self, name: str, typ: ast.Type, node: ast.Node) -> Symbol:
        if name in self._symbols:
            raise SemanticError(f"redeclaration of {name!r}", node.location)
        if name in INTRINSICS:
            raise SemanticError(
                f"{name!r} shadows an intrinsic function", node.location
            )
        sym = Symbol(name, typ)
        self._symbols[name] = sym
        return sym

    def lookup(self, name: str, node: ast.Node) -> Symbol:
        sym = self._symbols.get(name)
        if sym is None:
            raise SemanticError(f"undeclared variable {name!r}", node.location)
        return sym

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def symbols(self) -> list[Symbol]:
        return list(self._symbols.values())


def _numeric(t: ast.Type) -> bool:
    return not t.is_array and t.base in (ast.BaseType.INT, ast.BaseType.REAL)


def _unify_numeric(
    left: ast.Type, right: ast.Type, node: ast.Node, what: str
) -> ast.Type:
    if not (_numeric(left) and _numeric(right)):
        raise SemanticError(
            f"{what} requires numeric operands, got {left} and {right}",
            node.location,
        )
    if left.base is ast.BaseType.REAL or right.base is ast.BaseType.REAL:
        return ast.REAL
    return ast.INT


class Analyzer:
    def __init__(self) -> None:
        self.table = SymbolTable()
        self._loop_depth = 0

    # -- program ----------------------------------------------------------

    def analyze(self, program: ast.Program) -> SymbolTable:
        for decl in program.decls:
            for name in decl.names:
                self.table.declare(name, decl.type, decl)
        self._stmt(program.body)
        return self.table

    # -- statements ---------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.body:
                self._stmt(child)
        elif isinstance(stmt, ast.Assign):
            target_t = self._lvalue(stmt.target)
            value_t = self._expr(stmt.value)
            self._check_assignable(target_t, value_t, stmt)
        elif isinstance(stmt, ast.If):
            cond_t = self._expr(stmt.cond)
            if cond_t != ast.BOOL:
                raise SemanticError(
                    f"if condition must be bool, got {cond_t}", stmt.location
                )
            self._stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            cond_t = self._expr(stmt.cond)
            if cond_t != ast.BOOL:
                raise SemanticError(
                    f"while condition must be bool, got {cond_t}", stmt.location
                )
            self._loop_depth += 1
            self._stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            sym = self.table.lookup(stmt.var, stmt)
            if sym.type != ast.INT:
                raise SemanticError(
                    f"for-loop variable {stmt.var!r} must be int, is {sym.type}",
                    stmt.location,
                )
            for bound in (stmt.start, stmt.stop):
                t = self._expr(bound)
                if t != ast.INT:
                    raise SemanticError(
                        f"for-loop bound must be int, got {t}", stmt.location
                    )
            self._loop_depth += 1
            self._stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Write):
            t = self._expr(stmt.value)
            if t.is_array:
                raise SemanticError("cannot write a whole array", stmt.location)
        elif isinstance(stmt, ast.Read):
            self._lvalue(stmt.target)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemanticError(f"{kind} outside of a loop", stmt.location)
        else:  # pragma: no cover - parser cannot produce other nodes
            raise SemanticError(
                f"unknown statement {type(stmt).__name__}", stmt.location
            )

    def _check_assignable(
        self, target: ast.Type, value: ast.Type, node: ast.Node
    ) -> None:
        if target == value:
            return
        # implicit int -> real widening on assignment
        if target == ast.REAL and value == ast.INT:
            return
        raise SemanticError(
            f"cannot assign {value} to {target}", node.location
        )

    # -- expressions ----------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> ast.Type:
        if isinstance(expr, ast.VarRef):
            sym = self.table.lookup(expr.name, expr)
            if sym.type.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used without an index", expr.location
                )
            expr.type = sym.type
            return sym.type
        if isinstance(expr, ast.IndexRef):
            return self._index(expr)
        raise SemanticError("assignment target must be a variable", expr.location)

    def _index(self, expr: ast.IndexRef) -> ast.Type:
        sym = self.table.lookup(expr.name, expr)
        if not sym.type.is_array:
            raise SemanticError(
                f"{expr.name!r} is not an array", expr.location
            )
        index_t = self._expr(expr.index)
        if index_t != ast.INT:
            raise SemanticError(
                f"array index must be int, got {index_t}", expr.location
            )
        expr.type = sym.type.element()
        return expr.type

    def _expr(self, expr: ast.Expr) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            expr.type = ast.INT
        elif isinstance(expr, ast.RealLit):
            expr.type = ast.REAL
        elif isinstance(expr, ast.BoolLit):
            expr.type = ast.BOOL
        elif isinstance(expr, ast.VarRef):
            sym = self.table.lookup(expr.name, expr)
            if sym.type.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used without an index", expr.location
                )
            expr.type = sym.type
        elif isinstance(expr, ast.IndexRef):
            self._index(expr)
        elif isinstance(expr, ast.UnaryOp):
            operand_t = self._expr(expr.operand)
            if expr.op == "not":
                if operand_t != ast.BOOL:
                    raise SemanticError(
                        f"'not' requires bool, got {operand_t}", expr.location
                    )
                expr.type = ast.BOOL
            else:  # unary minus
                if not _numeric(operand_t):
                    raise SemanticError(
                        f"unary {expr.op!r} requires a number, got {operand_t}",
                        expr.location,
                    )
                expr.type = operand_t
        elif isinstance(expr, ast.BinaryOp):
            expr.type = self._binary(expr)
        elif isinstance(expr, ast.Call):
            expr.type = self._call(expr)
        else:  # pragma: no cover
            raise SemanticError(
                f"unknown expression {type(expr).__name__}", expr.location
            )
        return expr.type

    def _binary(self, expr: ast.BinaryOp) -> ast.Type:
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        if op in ("and", "or"):
            if left != ast.BOOL or right != ast.BOOL:
                raise SemanticError(
                    f"{op!r} requires bool operands, got {left} and {right}",
                    expr.location,
                )
            return ast.BOOL
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if left == ast.BOOL and right == ast.BOOL and op in ("=", "<>"):
                return ast.BOOL
            _unify_numeric(left, right, expr, f"comparison {op!r}")
            return ast.BOOL
        if op in ("div", "mod"):
            if left != ast.INT or right != ast.INT:
                raise SemanticError(
                    f"{op!r} requires int operands, got {left} and {right}",
                    expr.location,
                )
            return ast.INT
        if op == "/":
            _unify_numeric(left, right, expr, "division")
            return ast.REAL
        # + - *
        return _unify_numeric(left, right, expr, f"operator {op!r}")

    def _call(self, expr: ast.Call) -> ast.Type:
        sig = INTRINSICS.get(expr.name)
        if sig is None:
            raise SemanticError(
                f"unknown intrinsic {expr.name!r}", expr.location
            )
        arg_spec, result_spec = sig
        if len(expr.args) != len(arg_spec):
            raise SemanticError(
                f"{expr.name} expects {len(arg_spec)} argument(s), "
                f"got {len(expr.args)}",
                expr.location,
            )
        arg_types = [self._expr(a) for a in expr.args]
        widened = ast.INT
        for spec, got in zip(arg_spec, arg_types):
            if spec is None:
                if not _numeric(got):
                    raise SemanticError(
                        f"{expr.name} requires numeric arguments, got {got}",
                        expr.location,
                    )
                if got == ast.REAL:
                    widened = ast.REAL
            else:
                want = ast.Type(spec)  # type: ignore[arg-type]
                if got != want and not (want == ast.REAL and got == ast.INT):
                    raise SemanticError(
                        f"{expr.name} requires {want}, got {got}", expr.location
                    )
        if result_spec is None:
            return widened
        return ast.Type(result_spec)  # type: ignore[arg-type]


def analyze(program: ast.Program) -> SymbolTable:
    """Type-check ``program`` in place and return its symbol table."""
    return Analyzer().analyze(program)
