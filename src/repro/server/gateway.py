"""The sharding gateway of the distributed compile fabric.

:class:`CompileGateway` terminates client NDJSON connections exactly
like :class:`~repro.server.server.CompileServer` does, but owns no
compiler: each ``compile`` request is consistent-hashed by its
content-addressed source key (:meth:`repro.service.batch.BatchJob
.source_key` — the same key the worker's admission queue dedups on)
onto the :class:`ShardMap` and relayed to the owning worker with
:func:`repro.server.protocol.forward_envelope`.

Shard ownership is what turns the workers' *in-process* single-flight
dedup into *cluster-wide* single-flight: every duplicate of a given
source lands on the same worker, whose
:class:`~repro.server.queueing.AdmissionQueue` coalesces them into one
execution, and all workers share one multi-process-safe
:class:`~repro.service.AllocationCache` directory so a key compiled
anywhere is a cache hit everywhere.

Failure handling is bounded and client-transparent:

- a transport error or ``shutting-down`` answer from the owner makes
  the gateway retry the request against the next workers on the key's
  ring *preference list* (``failover`` successors, distinct workers);
- when every candidate fails, the client gets ``overloaded`` +
  ``retry_after_ms`` — a retryable shed, never a hard failure — so a
  worker crash mid-run costs clients at most a retry while the fabric
  supervisor (:mod:`repro.server.fabric`) restarts the worker;
- deadline budget is propagated: the forwarded ``deadline_ms`` is the
  client's remaining budget at forward time, so a worker never works
  past a deadline the client has already given up on.

The ring hashes *worker ids*, not endpoints: a worker restarted on a
new ephemeral port (``update_endpoint``) keeps its shards, preserving
cluster-wide single-flight across restarts.

``health`` answers locally and instantly.  ``stats`` fans out to every
worker and aggregates a ``cluster`` block (key-wise sums of the worker
request counters) next to the gateway's own counters, so one probe
describes the whole fabric.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass

from ..service.batch import BatchJob
from . import protocol
from .protocol import ProtocolError


@dataclass(slots=True)
class WorkerEndpoint:
    """Where one worker listens right now (host/port may change on
    restart; ``worker_id`` is its stable shard-map identity)."""

    worker_id: str
    host: str
    port: int


def shard_key(job: BatchJob) -> str:
    """The key a compile request shards on: the cheap content hash of
    (source, knobs) — computable without compiling, and exactly the key
    :class:`~repro.server.queueing.AdmissionQueue` single-flights on."""
    return job.source_key()


class ShardMap:
    """Consistent-hash ring over worker ids with virtual nodes.

    ``replicas`` virtual nodes per worker smooth the key distribution;
    :meth:`preference` walks the ring clockwise from the key's position
    and returns the first ``n`` *distinct* workers — the owner first,
    then the failover order.  Adding/removing one worker only moves the
    keys adjacent to its virtual nodes (~1/N of the space).
    """

    def __init__(self, worker_ids: list[str] | None = None, *,
                 replicas: int = 64):
        assert replicas >= 1
        self.replicas = replicas
        self._ring: list[tuple[int, str]] = []
        self._workers: set[str] = set()
        for worker_id in worker_ids or []:
            self.add(worker_id)

    @staticmethod
    def _point(label: str) -> int:
        return int.from_bytes(
            hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
        )

    def add(self, worker_id: str) -> None:
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        for i in range(self.replicas):
            self._ring.append(
                (self._point(f"{worker_id}#{i}"), worker_id)
            )
        self._ring.sort()

    def remove(self, worker_id: str) -> None:
        self._workers.discard(worker_id)
        self._ring = [(p, w) for p, w in self._ring if w != worker_id]

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def preference(self, key: str, n: int = 1) -> list[str]:
        """The first ``n`` distinct workers clockwise from ``key``:
        the shard owner, then its failover successors."""
        if not self._ring:
            return []
        point = self._point(key)
        # bisect over the (point, worker) pairs; ties cannot collide
        # with real entries because keys and vnode labels differ.
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        out: list[str] = []
        for i in range(len(self._ring)):
            worker = self._ring[(lo + i) % len(self._ring)][1]
            if worker not in out:
                out.append(worker)
                if len(out) >= min(n, len(self._workers)):
                    break
        return out

    def owner(self, key: str) -> str | None:
        pref = self.preference(key, 1)
        return pref[0] if pref else None


class WorkerLink:
    """A pooled NDJSON connection set to one worker.

    One in-flight request per connection (responses are in-order per
    connection on the worker side); idle connections are reused.  On a
    transport error the failed connection is discarded and the error
    propagates to the gateway's failover logic.  :meth:`retarget`
    repoints the link after a worker restart, dropping stale idle
    connections to the dead port.
    """

    def __init__(self, endpoint: WorkerEndpoint, *,
                 connect_timeout: float = 5.0):
        self.endpoint = endpoint
        self.connect_timeout = connect_timeout
        self._idle: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    def retarget(self, host: str, port: int) -> None:
        self.endpoint.host = host
        self.endpoint.port = port
        idle, self._idle = self._idle, []
        for _, writer in idle:
            writer.close()

    async def _checkout(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
        return await asyncio.wait_for(
            asyncio.open_connection(
                self.endpoint.host, self.endpoint.port,
                limit=protocol.MAX_LINE_BYTES,
            ),
            timeout=self.connect_timeout,
        )

    async def request(
        self, obj: dict[str, object], *, timeout: float | None = None
    ) -> dict[str, object]:
        """One round trip; raises ``ConnectionError``/``OSError``/
        ``asyncio.TimeoutError`` on transport failure."""
        reader, writer = await self._checkout()
        try:
            writer.write(protocol.encode_message(obj))
            await writer.drain()
            read = reader.readline()
            line = await (
                asyncio.wait_for(read, timeout=timeout)
                if timeout is not None else read
            )
            if not line:
                raise ConnectionResetError(
                    f"worker {self.endpoint.worker_id} closed the connection"
                )
        except BaseException:
            writer.close()
            raise
        self._idle.append((reader, writer))
        return protocol.decode_message(line)

    async def aclose(self) -> None:
        idle, self._idle = self._idle, []
        for _, writer in idle:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


#: Exceptions that mean "this worker is unreachable right now" —
#: the trigger for ring failover rather than a client-visible error.
TRANSPORT_ERRORS = (
    ConnectionError, OSError, EOFError,
    asyncio.TimeoutError, asyncio.IncompleteReadError,
)


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """Tunables of one :class:`CompileGateway`."""

    host: str = "127.0.0.1"
    port: int = 0
    #: provenance id stamped into forwarded requests' ``via``
    gateway_id: str = "gw-0"
    #: ring successors tried after the shard owner fails (distinct
    #: workers); the total attempts per request is ``1 + failover``
    failover: int = 1
    #: backoff hint attached to `overloaded` responses when every
    #: candidate worker was unreachable
    retry_after_ms: float = 50.0
    connect_timeout: float = 5.0
    #: deadline assumed for clients that send none (budget propagation)
    default_deadline: float = 60.0
    #: floor on the budget forwarded to a worker, so a nearly-expired
    #: deadline still makes a well-formed (positive) forwarded request
    min_forward_budget_ms: float = 10.0
    #: virtual nodes per worker on the consistent-hash ring
    ring_replicas: int = 64


@dataclass(slots=True)
class GatewayCounters:
    """Gateway-side outcome counters for ``stats``."""

    connections: int = 0
    requests: int = 0
    forwarded: int = 0
    failovers: int = 0
    worker_errors: int = 0
    shed_no_worker: int = 0
    rejected_draining: int = 0
    health: int = 0
    stats: int = 0
    protocol_errors: int = 0
    oversized_lines: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "forwarded": self.forwarded,
            "failovers": self.failovers,
            "worker_errors": self.worker_errors,
            "shed_no_worker": self.shed_no_worker,
            "rejected_draining": self.rejected_draining,
            "health": self.health,
            "stats": self.stats,
            "protocol_errors": self.protocol_errors,
            "oversized_lines": self.oversized_lines,
        }


class CompileGateway:
    """The client-facing shard router; see the module docstring."""

    def __init__(
        self,
        config: GatewayConfig | None = None,
        endpoints: list[WorkerEndpoint] | None = None,
        *,
        extra_stats=None,
    ):
        self.config = config or GatewayConfig()
        self.counters = GatewayCounters()
        self.shards = ShardMap(replicas=self.config.ring_replicas)
        self._links: dict[str, WorkerLink] = {}
        #: optional callable returning a ``fabric`` stats block
        #: (the supervisor injects worker pids/restart counts here)
        self._extra_stats = extra_stats
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained = asyncio.Event()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._started_at = time.monotonic()
        for endpoint in endpoints or []:
            self.add_worker(endpoint)

    # -- worker registry -----------------------------------------------------

    def add_worker(self, endpoint: WorkerEndpoint) -> None:
        assert endpoint.worker_id not in self._links, endpoint.worker_id
        self.shards.add(endpoint.worker_id)
        self._links[endpoint.worker_id] = WorkerLink(
            endpoint, connect_timeout=self.config.connect_timeout
        )

    def update_endpoint(self, worker_id: str, host: str, port: int) -> None:
        """Repoint a restarted worker; its shard assignment (keyed on
        ``worker_id``, not the endpoint) is untouched."""
        self._links[worker_id].retarget(host, port)

    @property
    def worker_ids(self) -> list[str]:
        return sorted(self._links)

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def state(self) -> str:
        if self._drained.is_set():
            return "stopped"
        return "draining" if self._draining else "serving"

    async def start(self) -> None:
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )

    def begin_drain(self) -> None:
        """Refuse new compile requests; in-flight forwards complete."""
        self._draining = True

    async def wait_drained(self) -> None:
        """Block until draining and every in-flight forward answered."""
        while not (self._draining and self._idle.is_set()):
            if self._draining:
                await self._idle.wait()
            else:
                await asyncio.sleep(0.01)

    async def aclose(self) -> None:
        self.begin_drain()
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in self._links.values():
            await link.aclose()
        self._drained.set()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.counters.oversized_lines += 1
                    self.counters.protocol_errors += 1
                    writer.write(protocol.encode_message(
                        protocol.error_response(
                            None,
                            f"request line exceeds "
                            f"{protocol.MAX_LINE_BYTES} bytes",
                        )
                    ))
                    await writer.drain()
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                reply = await self._handle_line(line)
                writer.write(protocol.encode_message(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_line(self, line: bytes) -> dict[str, object]:
        try:
            obj = protocol.decode_message(line)
            request = protocol.parse_request(obj)
        except ProtocolError as exc:
            self.counters.protocol_errors += 1
            return protocol.error_response(None, str(exc))
        if request.op == "health":
            self.counters.health += 1
            return protocol.response(
                request.id, "ok", state=self.state,
                version=protocol.PROTOCOL_VERSION,
                workers=len(self.shards),
                **protocol.identity("gateway"),
            )
        if request.op == "stats":
            self.counters.stats += 1
            return protocol.response(
                request.id, "ok", stats=await self.stats()
            )
        return await self._handle_compile(obj, request)

    # -- forwarding ----------------------------------------------------------

    async def _handle_compile(
        self, obj: dict[str, object], request: protocol.Request
    ) -> dict[str, object]:
        assert request.job is not None
        self.counters.requests += 1
        if self._draining:
            self.counters.rejected_draining += 1
            return protocol.response(
                request.id, "shutting-down",
                error="gateway is draining; retry against another instance",
            )
        self._inflight += 1
        self._idle.clear()
        try:
            return await self._forward(obj, request)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _forward(
        self, obj: dict[str, object], request: protocol.Request
    ) -> dict[str, object]:
        assert request.job is not None
        t0 = time.monotonic()
        budget_s = (
            request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else self.config.default_deadline
        )
        key = shard_key(request.job)
        candidates = self.shards.preference(key, 1 + self.config.failover)
        if not candidates:
            self.counters.shed_no_worker += 1
            return protocol.response(
                request.id, "overloaded",
                error="no workers registered",
                retry_after_ms=self.config.retry_after_ms,
            )
        for i, worker_id in enumerate(candidates):
            remaining_ms = max(
                self.config.min_forward_budget_ms,
                (budget_s - (time.monotonic() - t0)) * 1000.0,
            )
            try:
                fwd = protocol.forward_envelope(
                    obj,
                    deadline_ms=remaining_ms,
                    gateway=self.config.gateway_id,
                    hop=request.hop + 1,
                )
            except ProtocolError as exc:  # relay-depth overflow
                self.counters.protocol_errors += 1
                return protocol.error_response(request.id, str(exc))
            link = self._links[worker_id]
            try:
                # Grace on top of the worker-side deadline so the
                # worker's own `timeout` answer wins the race.
                reply = await link.request(
                    fwd, timeout=remaining_ms / 1000.0 + 1.0
                )
            except TRANSPORT_ERRORS:
                self.counters.worker_errors += 1
                if i + 1 < len(candidates):
                    self.counters.failovers += 1
                continue
            if (
                reply.get("status") == "shutting-down"
                and i + 1 < len(candidates)
            ):
                self.counters.failovers += 1
                continue
            self.counters.forwarded += 1
            return reply
        # Every candidate unreachable: shed retryably; the supervisor
        # is restarting workers and the client's backoff covers it.
        return protocol.response(
            request.id, "overloaded",
            error=f"all {len(candidates)} candidate workers unreachable",
            retry_after_ms=self.config.retry_after_ms,
        )

    # -- observability -------------------------------------------------------

    async def _worker_stats(
        self, worker_id: str
    ) -> tuple[str, dict[str, object]]:
        link = self._links[worker_id]
        try:
            reply = await link.request(
                {"op": "stats", "id": f"gw-stats-{worker_id}"}, timeout=5.0
            )
        except TRANSPORT_ERRORS:
            return worker_id, {
                "state": "down",
                "endpoint": f"{link.endpoint.host}:{link.endpoint.port}",
            }
        stats = reply.get("stats")
        return worker_id, (
            stats if isinstance(stats, dict)
            else {"state": "bad-stats-reply"}
        )

    async def stats(self) -> dict[str, object]:
        """Gateway stats plus a per-worker fan-out and the ``cluster``
        rollup (key-wise sum of worker request counters)."""
        pairs = await asyncio.gather(
            *(self._worker_stats(w) for w in self.worker_ids)
        )
        workers = dict(pairs)
        cluster: dict[str, object] = {"workers": len(workers),
                                      "workers_up": 0}
        for stats in workers.values():
            requests = stats.get("requests")
            if not isinstance(requests, dict):
                continue
            cluster["workers_up"] = int(cluster["workers_up"]) + 1
            for counter, value in requests.items():
                if isinstance(value, int):
                    base = cluster.get(counter, 0)
                    cluster[counter] = (
                        base if isinstance(base, int) else 0
                    ) + value
        out: dict[str, object] = {
            "state": self.state,
            "uptime_s": time.monotonic() - self._started_at,
            **protocol.identity("gateway"),
            "gateway_id": self.config.gateway_id,
            "config": {
                "failover": self.config.failover,
                "ring_replicas": self.config.ring_replicas,
                "default_deadline": self.config.default_deadline,
            },
            "requests": self.counters.as_dict(),
            "workers": workers,
            "cluster": cluster,
        }
        if self._extra_stats is not None:
            out["fabric"] = self._extra_stats()
        return out
