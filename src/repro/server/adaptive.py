"""Tiered adaptive recompilation: the server's background upgrade lane.

The compile server answers every request with the cheap heuristic
allocation (STOR1 + hitting set, the paper's reported configuration) so
latency stays low.  But the repository also carries strictly stronger
allocators the synchronous path can never afford:

- a *sweep* over the other strategy/method/seed configurations
  (:func:`repro.core.strategies.run_strategy`),
- profile-guided conflict weighting (:mod:`repro.core.profiled`, the
  paper's §3 closing discussion),
- the exact minimum-copy solver (:mod:`repro.core.exact`) on small
  instances.

This module closes that gap JIT-style.  :class:`UpgradeEngine` watches
which ``job_key`` s the server actually serves (weighted by coalesced
waiters, so a thundering herd counts as many hits); once a key crosses
``hot_threshold`` it is queued on a low-priority lane — one dedicated
worker thread, bounded queue, shed when full — that re-runs allocation
through the candidate tiers under a CPU budget, *verifies* the best
candidate (placement totality, pinned single copies via
:func:`repro.core.verify.conflicting_instructions` facts, and a memsim
run whose outputs must match the baseline's), and publishes it with
:meth:`repro.service.cache.AllocationCache.swap` — an atomic
compare-and-swap against the entry the decision was based on.  Readers
never observe a partial entry; a candidate that fails verification, or
that is not strictly better in residual conflicts, copies, or predicted
``t_ave``, is rejected and the original entry stays untouched.

Every upgrade emits a :class:`repro.passes.events.PassEvent` into a
bounded :class:`repro.passes.events.EventLog`; :meth:`UpgradeEngine
.stats` is the ``upgrades`` block of the server's ``stats`` payload.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from ..core.exact import min_total_copies
from ..core.profiled import profile_guided_stor1
from ..core.strategies import StorageResult, _program_facts, run_strategy
from ..core.verify import conflicting_instructions
from ..passes.cache import ArtifactCache
from ..passes.events import EventLog, Metrics, PassEvent
from ..service.batch import BatchJob, _compile_and_key
from ..service.cache import (
    AllocationCache,
    decode_storage_result,
    encode_storage_result,
)


@dataclass(frozen=True, slots=True)
class AdaptiveConfig:
    """Tunables of one :class:`UpgradeEngine`."""

    #: served-request count (waiter-weighted) before a key is queued
    hot_threshold: int = 3
    #: per-upgrade CPU budget (seconds); candidate tiers stop starting
    #: new work once it is spent
    budget_s: float = 5.0
    #: candidate tiers, tried in order within the budget
    tiers: tuple[str, ...] = ("sweep", "profiled", "exact")
    sweep_strategies: tuple[str, ...] = ("STOR1", "STOR2", "STOR3")
    sweep_methods: tuple[str, ...] = ("hitting_set", "backtrack")
    sweep_seeds: tuple[int, ...] = (0, 1, 2)
    #: exact tier only runs when the program has at most this many
    #: live values (the solver is exponential)
    exact_max_values: int = 8
    #: bounded upgrade queue; hot keys arriving beyond it are shed
    max_pending: int = 32
    #: bounded hotness table (LRU evicted)
    max_track: int = 1024


@dataclass(slots=True)
class UpgradeOutcome:
    """Result of one :func:`compute_upgrade` run."""

    key: str
    status: str  # 'improved' | 'rejected' | 'failed'
    tier: str | None = None
    strategy: str | None = None
    copies_saved: int = 0
    residual_saved: int = 0
    t_ave_delta: float = 0.0
    candidates: int = 0
    wall_time: float = 0.0
    error: str | None = None


@dataclass(frozen=True, slots=True)
class _Score:
    """Candidate quality, lexicographic-free: a candidate must be no
    worse on *every* axis and strictly better on at least one."""

    residual: int
    copies: int
    t_ave: float | None

    _EPS = 1e-9

    def improves_on(self, base: "_Score") -> bool:
        if self.residual > base.residual or self.copies > base.copies:
            return False
        if (
            self.t_ave is not None
            and base.t_ave is not None
            and self.t_ave > base.t_ave + self._EPS
        ):
            return False
        better = (
            self.residual < base.residual
            or self.copies < base.copies
        )
        if (
            not better
            and self.t_ave is not None
            and base.t_ave is not None
        ):
            better = self.t_ave < base.t_ave - self._EPS
        return better


def _validate_candidate(
    storage: StorageResult,
    k: int,
    all_values: list[int],
    duplicable: set[int],
) -> str | None:
    """Structural verification; returns a reason string on failure.

    Beyond what :func:`repro.core.verify.verify_allocation` checks
    (conflict freedom, which an upgrade is allowed to miss — residual
    conflicts are part of the score), a *publishable* candidate must

    - allocate on the same machine width ``k``,
    - place every live value (a served allocation is total),
    - give every non-duplicable (multi-definition) value exactly one
      copy — the exact solver does not know about pinning, so this is
      where an illegally duplicated pinned value is caught,
    - survive the cache encode/decode round trip bit-identically (what
      readers will decode is exactly what was scored).
    """
    alloc = storage.allocation
    if alloc.k != k:
        return f"allocation built for k={alloc.k}, machine has k={k}"
    for v in all_values:
        if not alloc.is_placed(v):
            return f"live value {v} left unplaced"
        if v not in duplicable and alloc.copy_count(v) != 1:
            return (
                f"non-duplicable value {v} has "
                f"{alloc.copy_count(v)} copies"
            )
    try:
        entry = encode_storage_result(storage)
        decoded = decode_storage_result(entry)
    except Exception as exc:  # noqa: BLE001 - any codec failure rejects
        return f"candidate does not round-trip: {exc!r}"
    if encode_storage_result(decoded) != entry:
        return "candidate round-trip is not bit-identical"
    return None


def _score(
    storage: StorageResult,
    operand_sets: list[frozenset[int]],
    program,
) -> tuple[_Score, list[object] | None]:
    """Score an allocation: recomputed residual conflicts, total copies,
    and (when the program simulates without inputs) predicted ``t_ave``
    plus the simulated outputs for the semantic check."""
    residual = len(
        conflicting_instructions(operand_sets, storage.allocation)
    )
    t_ave: float | None = None
    outputs: list[object] | None = None
    try:
        from ..pipeline import simulate

        sim = simulate(program, storage.allocation, [])
        t_ave = sim.memory.t_ave
        outputs = list(sim.outputs)
    except Exception:  # noqa: BLE001 - programs needing inputs, etc.
        pass
    return (
        _Score(residual, storage.allocation.total_copies, t_ave),
        outputs,
    )


def _candidate_tiers(
    job: BatchJob,
    program,
    config: AdaptiveConfig,
    operand_sets: list[frozenset[int]],
    all_values: list[int],
    k: int,
):
    """Yield ``(tier, describe, thunk)`` lazily so the budget check sits
    between solver runs, not after an eager list was already paid for."""
    for tier in config.tiers:
        if tier == "sweep":
            for strategy in config.sweep_strategies:
                for method in config.sweep_methods:
                    for seed in config.sweep_seeds:
                        if (
                            strategy.upper() == job.strategy.upper()
                            and method == job.method
                            and seed == job.seed
                        ):
                            continue  # the baseline itself
                        yield (
                            tier,
                            f"{strategy}/{method}/s{seed}",
                            lambda s=strategy, m=method, sd=seed: (
                                run_strategy(
                                    s, program.schedule, program.renamed,
                                    job.k, method=m, seed=sd,
                                )
                            ),
                        )
        elif tier == "profiled":
            for method in config.sweep_methods:
                yield (
                    tier,
                    f"profiled/{method}",
                    lambda m=method: profile_guided_stor1(
                        program.schedule, program.renamed, [],
                        k=job.k, method=m, seed=job.seed,
                    ),
                )
        elif tier == "exact":
            if len(all_values) > config.exact_max_values:
                continue
            yield tier, "exact", lambda: _exact_candidate(
                operand_sets, all_values, k
            )


def _exact_candidate(
    operand_sets: list[frozenset[int]],
    all_values: list[int],
    k: int,
) -> StorageResult | None:
    """The exact minimum-copy allocation, completed to a total one
    (values never appearing as operands get a least-used single copy,
    mirroring :func:`repro.core.assign.assign_modules`)."""
    alloc = min_total_copies(operand_sets, k)
    if alloc is None:
        return None
    load = [0] * k
    for v in alloc.values():
        for m in alloc.modules(v):
            load[m] += 1
    for v in sorted(set(all_values)):
        if not alloc.is_placed(v):
            m = min(range(k), key=lambda i: (load[i], i))
            alloc.add_copy(v, m)
            load[m] += 1
    return StorageResult(
        "EXACT", alloc, [], conflicting_instructions(operand_sets, alloc)
    )


def compute_upgrade(
    job: BatchJob,
    cache: AllocationCache,
    config: AdaptiveConfig,
    artifacts: ArtifactCache | None = None,
    stop: threading.Event | None = None,
) -> UpgradeOutcome:
    """Try to improve the cached allocation for ``job``; pure function
    of its arguments, runs on the upgrade worker thread.

    Walks the candidate tiers under ``config.budget_s``, scores each
    structurally valid candidate against the cached baseline, verifies
    the winner semantically (simulated outputs must match), and
    publishes it with a compare-and-swap so a concurrently refreshed
    entry is never clobbered.  Every failure mode — missing or
    undecodable baseline, solver exception, validation failure, lost
    swap race — leaves the original cache entry intact.
    """
    t0 = time.perf_counter()
    deadline = t0 + config.budget_s

    def done(outcome: UpgradeOutcome) -> UpgradeOutcome:
        outcome.wall_time = time.perf_counter() - t0
        return outcome

    try:
        program, key = _compile_and_key(job, Metrics(), artifacts)
    except Exception as exc:  # noqa: BLE001 - front end failed
        return done(UpgradeOutcome(
            key="", status="failed", error=f"front end: {exc!r}"
        ))

    baseline_entry = cache.peek(key)
    if baseline_entry is None:
        return done(UpgradeOutcome(
            key, "failed", error="baseline entry missing"
        ))
    try:
        baseline = decode_storage_result(baseline_entry)
    except Exception as exc:  # noqa: BLE001 - corrupt baseline
        return done(UpgradeOutcome(
            key, "failed", error=f"baseline undecodable: {exc!r}"
        ))

    operand_sets, _, duplicable, all_values = _program_facts(
        program.schedule, program.renamed
    )
    k = job.k if job.k is not None else job.machine.k
    base_score, base_outputs = _score(baseline, operand_sets, program)

    best: StorageResult | None = None
    best_score: _Score | None = None
    best_tier = best_label = None
    tried = 0
    for tier, label, thunk in _candidate_tiers(
        job, program, config, operand_sets, all_values, k
    ):
        if time.perf_counter() >= deadline:
            break
        if stop is not None and stop.is_set():
            break
        tried += 1
        try:
            candidate = thunk()
        except Exception:  # noqa: BLE001 - one tier failing is fine
            continue
        if candidate is None:
            continue
        if _validate_candidate(candidate, k, all_values, duplicable):
            continue
        score, _ = _score(candidate, operand_sets, program)
        against = best_score if best_score is not None else base_score
        if score.improves_on(against):
            best, best_score = candidate, score
            best_tier, best_label = tier, label

    if best is None or best_score is None:
        return done(UpgradeOutcome(
            key, "rejected", candidates=tried,
            error="no candidate beat the baseline" if tried else
                  "budget exhausted before any candidate ran",
        ))

    # Semantic verification: the upgraded allocation must compute the
    # same thing.  Only enforceable when both simulations ran.
    _, best_outputs = _score(best, operand_sets, program)
    if (
        base_outputs is not None
        and best_outputs is not None
        and best_outputs != base_outputs
    ):
        return done(UpgradeOutcome(
            key, "rejected", tier=best_tier, candidates=tried,
            error=f"candidate {best_label} changed simulated outputs",
        ))

    if not cache.swap(key, best, expected=baseline_entry):
        return done(UpgradeOutcome(
            key, "rejected", tier=best_tier, candidates=tried,
            error="lost swap race: baseline changed during upgrade",
        ))
    t_delta = (
        base_score.t_ave - best_score.t_ave
        if base_score.t_ave is not None and best_score.t_ave is not None
        else 0.0
    )
    return done(UpgradeOutcome(
        key, "improved", tier=best_tier, strategy=best.strategy,
        copies_saved=base_score.copies - best_score.copies,
        residual_saved=base_score.residual - best_score.residual,
        t_ave_delta=t_delta, candidates=tried,
    ))


class UpgradeEngine:
    """Hotness tracking + the single background upgrade worker.

    Lives inside the server's event loop: :meth:`note_served` is called
    from the dispatch loop for every resolved flight (loop thread, no
    locking needed for the tracking tables), while the actual solver
    work runs on a dedicated one-thread executor so neither the loop
    nor the dispatch thread ever waits on an upgrade.  The engine keeps
    its *own* :class:`~repro.passes.cache.ArtifactCache` — the batch
    compiler's instance is not thread-safe across threads.
    """

    def __init__(
        self,
        cache: AllocationCache,
        config: AdaptiveConfig | None = None,
        on_outcome: Callable[[UpgradeOutcome], None] | None = None,
    ):
        self.cache = cache
        self.config = config or AdaptiveConfig()
        self.on_outcome = on_outcome
        self.artifacts = ArtifactCache(max_entries=32)
        self.events = EventLog(maxlen=64)
        self._hits: OrderedDict[str, int] = OrderedDict()
        #: key -> 'queued' | 'upgrading' | terminal status; a key is
        #: upgraded at most once per server lifetime
        self._state: dict[str, str] = {}
        self._queue: asyncio.Queue[tuple[str, BatchJob]] = asyncio.Queue(
            maxsize=self.config.max_pending
        )
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-upgrade"
        )
        self._stop = threading.Event()
        self._task: asyncio.Task | None = None
        self._in_progress = 0
        self.attempted = 0
        self.improved = 0
        self.rejected = 0
        self.failed = 0
        self.shed = 0
        self.copies_saved = 0
        self.t_ave_delta = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.create_task(
                self._worker_loop(), name="repro-upgrade-loop"
            )

    async def aclose(self) -> None:
        """Stop promptly: the cooperative flag interrupts an in-flight
        ``compute_upgrade`` between candidates, then the worker task is
        cancelled and the pool drained."""
        self._stop.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self._pool.shutdown(wait=True)

    # -- hotness ------------------------------------------------------------

    def note_served(self, job: BatchJob, key: str, weight: int = 1) -> None:
        """Record that ``key`` was served to ``weight`` waiters; enqueue
        an upgrade once it crosses the hotness threshold.  Runs on the
        event loop."""
        if key in self._state:
            return  # queued, running, or already decided
        count = self._hits.get(key, 0) + max(1, weight)
        self._hits[key] = count
        self._hits.move_to_end(key)
        while len(self._hits) > self.config.max_track:
            self._hits.popitem(last=False)
        if count < self.config.hot_threshold:
            return
        try:
            self._queue.put_nowait((key, job))
        except asyncio.QueueFull:
            self.shed += 1
            return
        self._state[key] = "queued"
        self._hits.pop(key, None)

    # -- worker -------------------------------------------------------------

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            key, job = await self._queue.get()
            self._state[key] = "upgrading"
            self._in_progress += 1
            self.attempted += 1
            try:
                outcome = await loop.run_in_executor(
                    self._pool, compute_upgrade,
                    job, self.cache, self.config, self.artifacts,
                    self._stop,
                )
            except Exception as exc:  # noqa: BLE001 - worker must survive
                outcome = UpgradeOutcome(
                    key, "failed", error=f"upgrade worker: {exc!r}"
                )
            finally:
                self._in_progress -= 1
            self._absorb(key, outcome)

    def _absorb(self, key: str, outcome: UpgradeOutcome) -> None:
        self._state[key] = outcome.status
        if outcome.status == "improved":
            self.improved += 1
            self.copies_saved += outcome.copies_saved
            self.t_ave_delta += outcome.t_ave_delta
        elif outcome.status == "rejected":
            self.rejected += 1
        else:
            self.failed += 1
        counts: dict[str, int | float] = {
            "candidates": outcome.candidates,
            "copies_saved": outcome.copies_saved,
            "t_ave_delta": outcome.t_ave_delta,
        }
        self.events.emit(PassEvent(
            name=f"upgrade:{key[:12]}",
            status="end" if outcome.status == "improved" else "skip"
            if outcome.status == "rejected" else "error",
            wall_time=outcome.wall_time,
            counts=counts,
            warnings=(outcome.error,) if outcome.error else (),
        ))
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    # -- observability ------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No queued and no executing upgrades (the bench's settle
        condition)."""
        return self._queue.empty() and self._in_progress == 0

    def stats(self) -> dict[str, object]:
        return {
            "enabled": True,
            "hot_threshold": self.config.hot_threshold,
            "tracked": len(self._hits),
            "pending": self._queue.qsize(),
            "in_progress": self._in_progress,
            "attempted": self.attempted,
            "improved": self.improved,
            "rejected": self.rejected,
            "failed": self.failed,
            "shed": self.shed,
            "copies_saved": self.copies_saved,
            "t_ave_delta": self.t_ave_delta,
            "recent": self.events.as_rows(),
        }

    @staticmethod
    def disabled_stats() -> dict[str, object]:
        """The ``upgrades`` stats block when ``--adaptive`` is off —
        same keys, so the payload schema is stable either way."""
        return {
            "enabled": False,
            "hot_threshold": 0,
            "tracked": 0,
            "pending": 0,
            "in_progress": 0,
            "attempted": 0,
            "improved": 0,
            "rejected": 0,
            "failed": 0,
            "shed": 0,
            "copies_saved": 0,
            "t_ave_delta": 0.0,
            "recent": [],
        }
