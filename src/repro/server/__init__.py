"""Online compilation service: asyncio JSON-over-TCP front door.

Where :mod:`repro.service` batch-compiles an offline corpus, this
package *serves* compilation: ``python -m repro serve`` runs a
:class:`CompileServer` that accepts compile/allocate requests over TCP,
coalesces them into micro-batches for the
:class:`~repro.service.BatchCompiler`, deduplicates identical in-flight
work single-flight, sheds load from a bounded admission queue with
explicit ``overloaded`` responses, honours per-request deadlines, and
drains gracefully on SIGTERM.

Modules:

``repro.server.protocol``
    The wire format — newline-delimited JSON, request validation,
    framing/size limits, response statuses.
``repro.server.queueing``
    :class:`AdmissionQueue` — bounded admission, single-flight dedup,
    micro-batch coalescing, drain semantics.  Pure asyncio, no sockets.
``repro.server.server``
    :class:`WorkerCore` (the socket-free dispatch core) +
    :class:`CompileServer` + :func:`serve` — the TCP service, deadline
    handling, dispatch loop, ``health``/``stats`` endpoints.  The same
    core serves both the single-process mode and the fabric's worker
    role.
``repro.server.gateway``
    :class:`CompileGateway` — the distributed fabric's front door:
    consistent-hash sharding of compile requests over worker processes
    (cluster-wide single-flight by ownership), bounded ring failover,
    deadline-propagating request forwarding, aggregated cluster stats.
``repro.server.fabric``
    :class:`Fabric` — the one-command supervisor behind
    ``serve --role fabric``: spawns N workers over a shared allocation
    cache, health-checks and restarts them with backoff, and drains
    gateway-then-workers on SIGTERM.
``repro.server.adaptive``
    :class:`UpgradeEngine` — tiered adaptive recompilation: hot
    ``job_key`` s are background-upgraded with the exact solver and
    profile-weighted allocators, verified, and atomically swapped into
    the allocation cache.
``repro.server.client``
    :class:`ServerClient` — retries, exponential backoff with jitter,
    overload-aware request policy.
``repro.server.loadgen``
    The load generator behind ``python -m repro loadgen`` and
    ``benchmarks/bench_server.py``.

See ``docs/server.md`` for the protocol, backpressure semantics, and
the ops runbook.
"""

from .adaptive import AdaptiveConfig, UpgradeEngine, UpgradeOutcome
from .client import ServerClient, TransportError
from .fabric import Fabric, FabricConfig, run_fabric
from .gateway import (
    CompileGateway,
    GatewayConfig,
    ShardMap,
    WorkerEndpoint,
)
from .loadgen import LoadgenConfig, run_load
from .protocol import (
    MAX_LINE_BYTES,
    MAX_SOURCE_BYTES,
    ProtocolError,
    Request,
)
from .queueing import AdmissionQueue, Flight
from .server import (
    CompileServer,
    ServerConfig,
    ServerCounters,
    WorkerCore,
    serve,
)

__all__ = [
    "AdaptiveConfig",
    "AdmissionQueue",
    "CompileGateway",
    "CompileServer",
    "Fabric",
    "FabricConfig",
    "Flight",
    "GatewayConfig",
    "LoadgenConfig",
    "MAX_LINE_BYTES",
    "MAX_SOURCE_BYTES",
    "ProtocolError",
    "Request",
    "ServerClient",
    "ServerConfig",
    "ServerCounters",
    "ShardMap",
    "TransportError",
    "UpgradeEngine",
    "UpgradeOutcome",
    "WorkerCore",
    "WorkerEndpoint",
    "run_fabric",
    "run_load",
    "serve",
]
