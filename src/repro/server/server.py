"""The asyncio compile server: ``python -m repro serve``.

:class:`CompileServer` is the online front door to the batch-compilation
stack.  Requests arrive as newline-delimited JSON over TCP
(:mod:`repro.server.protocol`), flow through the bounded
:class:`~repro.server.queueing.AdmissionQueue` (backpressure +
single-flight dedup), are coalesced into micro-batches, and execute on
the existing :class:`~repro.service.BatchCompiler` — with its
content-addressed :class:`~repro.service.AllocationCache`, source index,
and stage-level front-end artifact reuse — in a dedicated dispatch
thread, so the event loop never blocks on compilation.

The dispatch machinery lives in :class:`WorkerCore`, deliberately
decoupled from sockets: the same core serves both the classic
single-process ``serve`` and the ``worker`` role of the distributed
fabric (:mod:`repro.server.gateway` routes to workers,
:mod:`repro.server.fabric` supervises them).  :class:`CompileServer`
is the TCP shell around one core.

Operational properties:

- **Backpressure, not buffering** — a full admission queue answers
  ``overloaded`` immediately with a ``retry_after_ms`` hint; memory use
  is bounded by ``max_queue`` jobs plus one executing batch.
- **Deadlines with cancellation** — every compile request carries a
  deadline (its own ``deadline_ms`` or the server default); expiry
  answers ``timeout`` and, if the request was the last waiter on a
  not-yet-dispatched flight, cancels the flight entirely.
- **Graceful drain** — SIGTERM/SIGINT (or :meth:`begin_drain`) stops
  admission, finishes every queued flight, answers every accepted
  waiter, then exits; :meth:`drain_summary` asserts zero unanswered
  accepted requests.
- **Observability** — ``health`` and ``stats`` answer instantly (they
  bypass the queue) and expose the process identity (``role``,
  ``worker_id``, ``schema_version``), queue depth, shed/dedup counters,
  batch sizes, latency percentiles (:class:`repro.passes.events
  .LatencyRecorder`), strategy-execution counts, and the allocation/
  front-end cache statistics.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..passes.events import LatencyRecorder
from ..service.batch import BatchCompiler, BatchJob, JobResult
from ..service.cache import AllocationCache
from . import protocol
from .adaptive import AdaptiveConfig, UpgradeEngine, UpgradeOutcome
from .protocol import ProtocolError, Request
from .queueing import AdmissionQueue, Flight


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Tunables of one :class:`WorkerCore`/:class:`CompileServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off `address`
    #: BatchCompiler pool width; 1 = compile serially in the dispatch
    #: thread (lowest latency for small batches), >1 = process pool.
    workers: int = 1
    #: per-job seconds inside the BatchCompiler (worker hang guard)
    job_timeout: float | None = 120.0
    max_queue: int = 64
    max_batch: int = 8
    #: seconds to linger after the first queued request, coalescing
    #: near-simultaneous arrivals into one batch
    batch_window: float = 0.01
    #: default per-request deadline when the client sends none
    default_deadline: float = 60.0
    cache_dir: str | None = None
    #: backoff hint attached to `overloaded` responses
    retry_after_ms: float = 50.0
    #: enable the background adaptive-recompilation lane
    #: (:mod:`repro.server.adaptive`)
    adaptive: bool = False
    #: waiter-weighted served count before a job_key is upgrade-eligible
    hot_threshold: int = 3
    #: per-upgrade CPU budget in seconds
    upgrade_budget: float = 5.0
    #: fabric identity: one of :data:`repro.server.protocol.ROLES`
    role: str = "single"
    #: stable worker name within a fabric (shard-map key); None for
    #: the single-process role
    worker_id: str | None = None
    #: synthetic per-job service time (seconds) added in the dispatch
    #: thread — a load/capacity-testing aid (``--synthetic-delay-ms``)
    #: used by the fabric benchmark so throughput-scaling measurements
    #: are not bottlenecked by the host's core count.  0 in production.
    synthetic_delay: float = 0.0


@dataclass(slots=True)
class ServerCounters:
    """Request-outcome and background-work counters for ``stats``."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    overloaded: int = 0
    timeouts: int = 0
    rejected_draining: int = 0
    protocol_errors: int = 0
    health: int = 0
    stats: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    strategy_executions: int = 0
    connections: int = 0
    oversized_lines: int = 0
    #: compile requests that arrived via a gateway forward (`via` set)
    forwarded_in: int = 0
    #: compile requests served with ``array_layout='optimize'``
    array_opt_compiles: int = 0
    upgrades_attempted: int = 0
    upgrades_improved: int = 0
    upgrades_rejected: int = 0
    upgrades_failed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "overloaded": self.overloaded,
            "timeouts": self.timeouts,
            "rejected_draining": self.rejected_draining,
            "protocol_errors": self.protocol_errors,
            "health": self.health,
            "stats": self.stats,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "strategy_executions": self.strategy_executions,
            "connections": self.connections,
            "oversized_lines": self.oversized_lines,
            "forwarded_in": self.forwarded_in,
            "array_opt_compiles": self.array_opt_compiles,
            "upgrades_attempted": self.upgrades_attempted,
            "upgrades_improved": self.upgrades_improved,
            "upgrades_rejected": self.upgrades_rejected,
            "upgrades_failed": self.upgrades_failed,
        }


@dataclass(slots=True)
class _Latencies:
    total: LatencyRecorder = field(default_factory=LatencyRecorder)
    queue_wait: LatencyRecorder = field(default_factory=LatencyRecorder)
    execute: LatencyRecorder = field(default_factory=LatencyRecorder)

    def as_dict(self) -> dict[str, object]:
        return {
            "total": self.total.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "execute": self.execute.snapshot(),
        }


class WorkerCore:
    """The socket-free dispatch core of one compile worker.

    Owns the admission queue, the micro-batch dispatch loop (running
    the :class:`~repro.service.BatchCompiler` on a dedicated thread),
    the adaptive-upgrade lane, and every counter the ``stats``
    endpoint reports.  :class:`CompileServer` wraps a core in a TCP
    listener; the fabric's ``worker`` role is the *same* core behind
    the same listener, so single-process behavior is pinned by the
    same test suite that pins the worker role.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        compiler: BatchCompiler | None = None,
    ):
        self.config = config or ServerConfig()
        self.compiler = compiler if compiler is not None else BatchCompiler(
            workers=self.config.workers,
            timeout=self.config.job_timeout,
            cache=AllocationCache(self.config.cache_dir),
        )
        self.queue = AdmissionQueue(
            max_depth=self.config.max_queue,
            max_batch=self.config.max_batch,
            batch_window=self.config.batch_window,
        )
        self.counters = ServerCounters()
        self.latency = _Latencies()
        self.upgrades: UpgradeEngine | None = None
        if self.config.adaptive:
            self.upgrades = UpgradeEngine(
                self.compiler.cache,
                AdaptiveConfig(
                    hot_threshold=self.config.hot_threshold,
                    budget_s=self.config.upgrade_budget,
                ),
                on_outcome=self._absorb_upgrade,
            )
        self._stage_totals: dict[str, float] = {}
        self._metric_counters: dict[str, float] = {}
        self._dispatch_task: asyncio.Task | None = None
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-dispatch"
        )
        self._queue_drained = asyncio.Event()
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> str:
        if self._queue_drained.is_set():
            return "stopped"
        return "draining" if self.queue.draining else "serving"

    def start(self) -> None:
        """Start the dispatch loop (and the upgrade lane, if enabled)
        on the running event loop."""
        self._started_at = time.monotonic()
        self._dispatch_task = asyncio.create_task(
            self._dispatch_loop(), name="repro-dispatch-loop"
        )
        if self.upgrades is not None:
            self.upgrades.start()

    def begin_drain(self) -> None:
        """Stop accepting work; already-accepted work still completes."""
        if not self.queue.draining:
            self.queue.close()

    async def wait_queue_drained(self) -> None:
        """Block until the dispatch loop has resolved every accepted
        flight and exited (requires :meth:`begin_drain`)."""
        await self._queue_drained.wait()

    async def aclose(self) -> None:
        """Drain and shut down (idempotent)."""
        self.begin_drain()
        if self._dispatch_task is not None:
            await self._dispatch_task
        if self.upgrades is not None:
            await self.upgrades.aclose()
        self._dispatch_pool.shutdown(wait=True)

    def drain_summary(self) -> dict[str, object]:
        """The post-drain invariant record: every accepted request must
        be resolved or have been answered `timeout` (abandoned)."""
        stats = self.queue.stats
        return {
            "admitted": stats.admitted,
            "resolved": stats.resolved,
            "abandoned": stats.abandoned,
            "unanswered": self.queue.unanswered(),
            "requests": self.counters.requests,
            "ok": self.counters.ok,
            "timeouts": self.counters.timeouts,
            "overloaded": self.counters.overloaded,
            "strategy_executions": self.counters.strategy_executions,
        }

    # -- request handling ----------------------------------------------------

    async def handle_request(self, request: Request) -> dict[str, object]:
        """Answer one validated request (any op)."""
        if request.op == "health":
            self.counters.health += 1
            return protocol.response(
                request.id, "ok", state=self.state,
                version=protocol.PROTOCOL_VERSION,
                **protocol.identity(self.config.role, self.config.worker_id),
            )
        if request.op == "stats":
            self.counters.stats += 1
            return protocol.response(request.id, "ok", stats=self.stats())
        return await self.handle_compile(request)

    async def handle_compile(self, request: Request) -> dict[str, object]:
        assert request.job is not None
        self.counters.requests += 1
        if request.via is not None:
            self.counters.forwarded_in += 1
        t0 = time.monotonic()
        if self.queue.draining:
            self.counters.rejected_draining += 1
            return protocol.response(
                request.id, "shutting-down",
                error="server is draining; retry against another instance",
            )
        try:
            flight = self.queue.submit(request.job)
        except RuntimeError:
            self.counters.rejected_draining += 1
            return protocol.response(
                request.id, "shutting-down",
                error="server is draining; retry against another instance",
            )
        if flight is None:
            self.counters.overloaded += 1
            return protocol.response(
                request.id, "overloaded",
                error="admission queue full",
                retry_after_ms=self.config.retry_after_ms,
                queue_depth=self.queue.depth,
            )
        attached = flight.coalesced
        if attached:
            self.counters.dedup_hits += 1

        deadline_s = (
            request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else self.config.default_deadline
        )
        try:
            result: JobResult = await asyncio.wait_for(
                # shield: one waiter's timeout must not cancel the
                # shared flight future out from under the other waiters
                asyncio.shield(flight.future), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            self.queue.abandon(flight)
            self.counters.timeouts += 1
            self.latency.total.record(time.monotonic() - t0)
            return protocol.response(
                request.id, "timeout",
                error=f"deadline of {deadline_s:.3f}s expired",
                deadline_ms=deadline_s * 1000.0,
            )
        self.latency.total.record(time.monotonic() - t0)
        return self._compile_response(request, flight, result, attached)

    def _compile_response(
        self,
        request: Request,
        flight: Flight,
        result: JobResult,
        attached: bool,
    ) -> dict[str, object]:
        server_info = {
            "queued_ms": flight.queued_for * 1000.0,
            "batch_size": flight.batch_size,
        }
        if result.storage is None:
            self.counters.errors += 1
            return protocol.response(
                request.id, "error",
                error=result.error or "compilation failed",
                server=server_info,
            )
        self.counters.ok += 1
        if result.cache_hit:
            self.counters.cache_hits += 1
        payload: dict[str, object] = {
            "key": result.key,
            "name": request.job.name if request.job else None,
            "strategy": result.job.strategy,
            "method": result.job.method,
            "singles": result.storage.singles,
            "multiples": result.storage.multiples,
            "total_copies": result.storage.total_copies,
            "residual": len(result.storage.residual_instructions),
            "cache_hit": result.cache_hit,
            "dedup": attached,
            "mode": result.mode,
            "wall_time": result.wall_time,
        }
        if result.plan is not None:
            payload["array_opt"] = result.plan.as_dict()  # type: ignore[attr-defined]
        if request.include_allocation:
            from ..service.cache import encode_storage_result

            payload["allocation"] = encode_storage_result(result.storage)
        return protocol.response(
            request.id, "ok", result=payload, server=server_info
        )

    # -- dispatch ------------------------------------------------------------

    def _run_batch(self, jobs: list[BatchJob]):
        """Dispatch-thread body: one BatchCompiler run, plus the
        optional synthetic per-job service time (capacity testing)."""
        report = self.compiler.run(jobs)
        if self.config.synthetic_delay > 0:
            time.sleep(self.config.synthetic_delay * len(jobs))
        return report

    async def _dispatch_loop(self) -> None:
        """Pull micro-batches off the queue and run them on the batch
        compiler in the dispatch thread until drained."""
        loop = asyncio.get_running_loop()
        while True:
            batch = await self.queue.next_batch()
            if batch is None:
                break  # draining and empty
            jobs = [flight.job for flight in batch]
            t0 = time.monotonic()
            try:
                report = await loop.run_in_executor(
                    self._dispatch_pool, self._run_batch, jobs
                )
                results = list(report.results)
            except Exception as exc:  # noqa: BLE001 - batch-level failure
                results = [
                    JobResult(job, None, None, False, "error", 0.0,
                              error=f"dispatch failed: {exc!r}")
                    for job in jobs
                ]
            elapsed = time.monotonic() - t0
            for flight, result in zip(batch, results):
                self.latency.queue_wait.record(flight.queued_for)
                self.latency.execute.record(elapsed)
                self._absorb_metrics(result)
                if (
                    self.upgrades is not None
                    and result.ok
                    and result.key is not None
                ):
                    self.upgrades.note_served(
                        result.job, result.key, max(1, flight.waiters)
                    )
                self.queue.resolve(flight, result)
        # past this point nothing new can be admitted; the core is
        # fully drained once every submitted flight above was resolved.
        self._queue_drained.set()

    def _absorb_metrics(self, result: JobResult) -> None:
        if result.ok and not result.cache_hit:
            self.counters.strategy_executions += 1
        if result.plan is not None:
            self.counters.array_opt_compiles += 1
        for stage in result.metrics.get("stages", ()):  # type: ignore[union-attr]
            name = str(stage["name"])
            self._stage_totals[name] = (
                self._stage_totals.get(name, 0.0) + float(stage["wall_time"])
            )
        for key, value in result.metrics.get("counters", {}).items():  # type: ignore[union-attr]
            self._metric_counters[key] = (
                self._metric_counters.get(key, 0) + value
            )

    def _absorb_upgrade(self, outcome: UpgradeOutcome) -> None:
        """UpgradeEngine outcome callback (runs on the event loop)."""
        self.counters.upgrades_attempted += 1
        if outcome.status == "improved":
            self.counters.upgrades_improved += 1
        elif outcome.status == "rejected":
            self.counters.upgrades_rejected += 1
        else:
            self.counters.upgrades_failed += 1

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """The ``stats`` endpoint payload."""
        return {
            "state": self.state,
            "uptime_s": time.monotonic() - self._started_at,
            **protocol.identity(self.config.role, self.config.worker_id),
            "config": {
                "workers": self.config.workers,
                "max_queue": self.config.max_queue,
                "max_batch": self.config.max_batch,
                "batch_window": self.config.batch_window,
                "default_deadline": self.config.default_deadline,
                "adaptive": self.config.adaptive,
            },
            "requests": self.counters.as_dict(),
            "queue": self.queue.as_dict(),
            "latency": self.latency.as_dict(),
            "cache": self.compiler.cache.stats(),
            "frontend_cache": self.compiler.artifacts.stats(),
            "delta_cache": self.compiler.delta.stats(),
            "stage_totals": dict(self._stage_totals),
            "metric_counters": dict(self._metric_counters),
            "upgrades": (
                self.upgrades.stats()
                if self.upgrades is not None
                else UpgradeEngine.disabled_stats()
            ),
        }


class CompileServer:
    """One listening compile service: a TCP shell around a
    :class:`WorkerCore`; see the module docstring."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        compiler: BatchCompiler | None = None,
        core: WorkerCore | None = None,
    ):
        self.core = core if core is not None else WorkerCore(config, compiler)
        self._server: asyncio.AbstractServer | None = None
        self._drain_watcher: asyncio.Task | None = None
        self._drained = asyncio.Event()

    # -- delegation (the core owns all serving state) ------------------------

    @property
    def config(self) -> ServerConfig:
        return self.core.config

    @property
    def compiler(self) -> BatchCompiler:
        return self.core.compiler

    @property
    def queue(self) -> AdmissionQueue:
        return self.core.queue

    @property
    def counters(self) -> ServerCounters:
        return self.core.counters

    @property
    def latency(self) -> _Latencies:
        return self.core.latency

    @property
    def upgrades(self) -> UpgradeEngine | None:
        return self.core.upgrades

    def stats(self) -> dict[str, object]:
        return self.core.stats()

    def drain_summary(self) -> dict[str, object]:
        return self.core.drain_summary()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def state(self) -> str:
        if self._drained.is_set():
            return "stopped"
        return self.core.state

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.core.config.host,
            self.core.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.core.start()
        self._drain_watcher = asyncio.create_task(
            self._close_when_drained(), name="repro-drain-watcher"
        )

    async def _close_when_drained(self) -> None:
        """Close the listener once the core has resolved everything it
        accepted, then mark the whole server drained."""
        await self.core.wait_queue_drained()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without loop signal support

    def begin_drain(self) -> None:
        """Stop accepting work; already-accepted work still completes."""
        self.core.begin_drain()

    async def wait_drained(self) -> None:
        """Block until the drain (triggered by :meth:`begin_drain`)
        finishes: queue empty, every waiter answered, sockets closed."""
        await self._drained.wait()

    async def run_until_drained(self) -> dict[str, object]:
        """Start (if needed), serve until drained, return the summary."""
        if self._server is None:
            await self.start()
        await self.wait_drained()
        return self.drain_summary()

    async def aclose(self) -> None:
        """Drain and shut down (idempotent)."""
        self.begin_drain()
        await self.core.aclose()
        if self._drain_watcher is not None:
            await self._drain_watcher
        elif self._server is not None:  # started listener, core never ran
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.core.counters.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # A line longer than the stream limit: answer once,
                    # then close — the stream cannot be resynchronized.
                    self.core.counters.oversized_lines += 1
                    self.core.counters.protocol_errors += 1
                    writer.write(protocol.encode_message(
                        protocol.error_response(
                            None,
                            f"request line exceeds "
                            f"{protocol.MAX_LINE_BYTES} bytes",
                        )
                    ))
                    await writer.drain()
                    break
                if not line:
                    break  # EOF
                if line.strip() == b"":
                    continue
                reply = await self._handle_line(line)
                writer.write(protocol.encode_message(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished; any accepted work still completes
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_line(self, line: bytes) -> dict[str, object]:
        try:
            request = protocol.parse_request(protocol.decode_message(line))
        except ProtocolError as exc:
            self.core.counters.protocol_errors += 1
            return protocol.error_response(None, str(exc))
        return await self.core.handle_request(request)


async def serve(
    config: ServerConfig,
    *,
    announce=None,
    signals: bool = True,
) -> dict[str, object]:
    """Run one server until drained; the ``python -m repro serve`` body.

    ``announce(event_dict)`` is called with a ``serving`` record once
    the socket is bound (carrying the live host/port — port 0 picks an
    ephemeral one) and with the drain summary on exit; the CLI prints
    these as single JSON lines so harnesses can scrape them.
    """
    server = CompileServer(config)
    await server.start()
    if signals:
        server.install_signal_handlers()
    if announce is not None:
        host, port = server.address
        announce({
            "event": "serving", "host": host, "port": port,
            "pid": os.getpid(), "role": config.role,
            "worker_id": config.worker_id,
        })
    await server.wait_drained()
    await server.aclose()
    summary = server.drain_summary()
    if announce is not None:
        announce({"event": "drained", **summary})
    return summary
