"""Admission queue, single-flight deduplication, and micro-batching.

The server's concurrency discipline lives here, decoupled from sockets
so it is unit-testable with plain asyncio:

- **Bounded admission** — at most ``max_depth`` *distinct* jobs may be
  queued awaiting dispatch.  :meth:`AdmissionQueue.submit` returns
  ``None`` when the queue is full; the server turns that into an
  ``overloaded`` response immediately.  Nothing in the pipeline buffers
  without bound.
- **Single-flight dedup** — flights are keyed by the job's content
  address (:meth:`repro.service.BatchJob.source_key`, the same index
  key the batch compiler maps to the allocation-cache ``job_key``).  A
  request identical to queued *or already-executing* work attaches to
  the existing :class:`Flight` as an extra waiter instead of enqueuing
  a duplicate: a thundering herd of one program costs one compilation.
- **Micro-batching** — :meth:`AdmissionQueue.next_batch` coalesces the
  queue into batches of up to ``max_batch`` flights, waiting up to
  ``batch_window`` seconds after the first arrival so that near-
  simultaneous requests share one dispatch to the
  :class:`~repro.service.BatchCompiler` (which amortizes front-end
  artifact reuse and pool start-up across the batch).
- **Deadline abandonment** — a waiter whose deadline expires calls
  :meth:`AdmissionQueue.abandon`; when the *last* waiter of a
  still-undispatched flight gives up, the flight is cancelled and never
  dispatched (counted, not silently dropped — the waiter already got a
  ``timeout`` response).
- **Drain** — :meth:`AdmissionQueue.close` stops admission;
  ``next_batch`` keeps returning batches until the queue is empty and
  then returns ``None``, so a draining server finishes everything it
  accepted ("zero dropped accepted requests").
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..service.batch import BatchJob, JobResult


@dataclass(eq=False, slots=True)
class Flight:
    """One admitted unit of work and everyone waiting on it."""

    key: str
    job: BatchJob
    future: asyncio.Future  # resolves to a JobResult
    enqueued_at: float
    waiters: int = 1
    dispatched: bool = False
    abandoned: bool = False
    batch_size: int = 0  # size of the batch that dispatched it
    queued_for: float = 0.0  # seconds spent queued before dispatch

    @property
    def coalesced(self) -> bool:
        """Did single-flight dedup attach more than one waiter?"""
        return self.waiters > 1


@dataclass(slots=True)
class QueueStats:
    """Lifetime counters of one :class:`AdmissionQueue`."""

    admitted: int = 0       # distinct flights accepted
    attached: int = 0       # requests answered by an existing flight
    shed: int = 0           # submissions rejected: queue full
    rejected_draining: int = 0
    abandoned: int = 0      # flights cancelled: every waiter timed out
    resolved: int = 0       # flights answered with a result
    batches: int = 0
    batched_jobs: int = 0
    max_batch_size: int = 0
    last_batch_size: int = 0
    high_water: int = 0     # deepest the queue ever got

    def as_dict(self) -> dict[str, object]:
        return {
            "admitted": self.admitted,
            "attached": self.attached,
            "shed": self.shed,
            "rejected_draining": self.rejected_draining,
            "abandoned": self.abandoned,
            "resolved": self.resolved,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "max_batch_size": self.max_batch_size,
            "last_batch_size": self.last_batch_size,
            "mean_batch_size": (
                self.batched_jobs / self.batches if self.batches else 0.0
            ),
            "high_water": self.high_water,
        }


class AdmissionQueue:
    """Bounded FIFO of flights with single-flight dedup and batching.

    Single-threaded by construction: every method runs on the event
    loop, so no locks are needed.  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        max_depth: int = 64,
        max_batch: int = 8,
        batch_window: float = 0.01,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_depth < 1 or max_batch < 1:
            raise ValueError("max_depth and max_batch must be >= 1")
        self.max_depth = max_depth
        self.max_batch = max_batch
        self.batch_window = batch_window
        self._clock = clock
        self._queue: deque[Flight] = deque()
        #: key -> flight, from admission until resolution (covers both
        #: queued and currently-executing work — late duplicates of an
        #: executing job still attach).
        self._inflight: dict[str, Flight] = {}
        self._arrival = asyncio.Event()
        self._draining = False
        self.stats = QueueStats()

    # -- admission -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Distinct flights queued and not yet dispatched."""
        return len(self._queue)

    @property
    def inflight(self) -> int:
        """Distinct flights admitted and not yet resolved."""
        return len(self._inflight)

    @property
    def draining(self) -> bool:
        return self._draining

    def submit(self, job: BatchJob) -> Flight | None:
        """Admit ``job`` (or attach to its in-flight twin).

        Returns ``None`` when the bounded queue is full — the caller
        must answer ``overloaded``.  Raises :class:`RuntimeError` if
        draining (callers check :attr:`draining` first; the raise
        guards against races).
        """
        key = job.source_key()
        existing = self._inflight.get(key)
        if existing is not None and not existing.abandoned:
            existing.waiters += 1
            self.stats.attached += 1
            return existing
        if self._draining:
            self.stats.rejected_draining += 1
            raise RuntimeError("queue is draining")
        if len(self._queue) >= self.max_depth:
            self.stats.shed += 1
            return None
        flight = Flight(
            key=key,
            job=job,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=self._clock(),
        )
        self._queue.append(flight)
        self._inflight[key] = flight
        self.stats.admitted += 1
        self.stats.high_water = max(self.stats.high_water, len(self._queue))
        self._arrival.set()
        return flight

    def abandon(self, flight: Flight) -> None:
        """One waiter gave up (deadline expired, connection lost).

        The flight itself is cancelled only if it has not been
        dispatched and nobody else is waiting; executing work always
        runs to completion (its result still warms the cache)."""
        flight.waiters = max(0, flight.waiters - 1)
        if flight.waiters == 0 and not flight.dispatched:
            flight.abandoned = True
            self._inflight.pop(flight.key, None)
            try:
                self._queue.remove(flight)
            except ValueError:
                pass
            self.stats.abandoned += 1

    # -- batching ------------------------------------------------------------

    async def next_batch(self) -> list[Flight] | None:
        """Wait for work and return the next micro-batch, oldest first.

        Coalesces for up to ``batch_window`` seconds after the first
        queued flight (unless the batch is already full or the queue is
        draining — drain flushes immediately).  Returns ``None`` once
        draining *and* empty: the dispatch loop's exit signal.
        """
        while True:
            if not self._queue:
                if self._draining:
                    return None
                self._arrival.clear()
                await self._arrival.wait()
                continue
            if (
                len(self._queue) < self.max_batch
                and self.batch_window > 0
                and not self._draining
            ):
                await asyncio.sleep(self.batch_window)
            batch: list[Flight] = []
            now = self._clock()
            while self._queue and len(batch) < self.max_batch:
                flight = self._queue.popleft()
                if flight.abandoned:
                    continue
                flight.dispatched = True
                flight.queued_for = now - flight.enqueued_at
                batch.append(flight)
            if not batch:
                continue
            for flight in batch:
                flight.batch_size = len(batch)
            self.stats.batches += 1
            self.stats.batched_jobs += len(batch)
            self.stats.last_batch_size = len(batch)
            self.stats.max_batch_size = max(
                self.stats.max_batch_size, len(batch)
            )
            return batch

    def resolve(self, flight: Flight, result: JobResult) -> None:
        """Publish ``result`` to every waiter and retire the flight."""
        self._inflight.pop(flight.key, None)
        if not flight.future.done():
            flight.future.set_result(result)
        self.stats.resolved += 1

    # -- drain ---------------------------------------------------------------

    def close(self) -> None:
        """Stop admission; queued flights still dispatch and resolve."""
        self._draining = True
        self._arrival.set()  # wake next_batch so it can flush / exit

    def unanswered(self) -> int:
        """Admitted flights that neither resolved nor were abandoned —
        must be zero after a completed drain."""
        return (
            self.stats.admitted - self.stats.resolved - self.stats.abandoned
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "depth": self.depth,
            "inflight": self.inflight,
            "max_depth": self.max_depth,
            "max_batch": self.max_batch,
            "batch_window": self.batch_window,
            "draining": self._draining,
            **self.stats.as_dict(),
        }
