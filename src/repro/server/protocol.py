"""Wire protocol of the compile server: newline-delimited JSON over TCP.

One request per line, one response line per request, in order::

    {"id": 1, "op": "compile", "source": "program p; ...", "strategy":
     "STOR1", "machine": {"num_fus": 4, "num_modules": 8},
     "deadline_ms": 30000}\n

    {"id": 1, "status": "ok", "result": {"key": "...", "singles": 7,
     "multiples": 1, "total_copies": 9, "residual": 0, "cache_hit":
     false, "dedup": false}, "server": {"queued_ms": 1.9,
     "batch_size": 4}}\n

Three operations exist:

``compile``
    Compile + storage-allocate one program.  The request body carries
    the same knobs as a :class:`repro.service.BatchJob` (``source``,
    ``machine``, ``strategy``, ``method``, ``unroll``,
    ``constants_in_memory``, ``k``, ``seed``, ``max_atom_nodes``,
    ``runner``, ``array_layout``, ``frontend``, ``entry``) plus a
    per-request
    ``deadline_ms`` and ``include_allocation`` (return the full encoded
    :class:`~repro.core.strategies.StorageResult`, not just the summary).
``health``
    Liveness probe; answered immediately, even while draining.
``stats``
    Full server statistics snapshot (queue, batches, dedup, latency
    percentiles, cache counters).

Response ``status`` values (:data:`STATUSES`):

- ``ok`` — result attached;
- ``error`` — malformed request, oversized source, unknown strategy, or
  a compile/allocation failure (``error`` field has the message);
- ``overloaded`` — the bounded admission queue is full; the request was
  *not* accepted and the client should back off and retry
  (``retry_after_ms`` is a hint);
- ``timeout`` — the request's deadline expired before a result was
  ready (the underlying work may still complete and warm the cache);
- ``shutting-down`` — the server is draining and accepts no new work.

Framing limits are explicit: a request line longer than
:data:`MAX_LINE_BYTES` is a protocol error (the connection is closed
after an error response), and a ``source`` longer than
:data:`MAX_SOURCE_BYTES` is rejected per-request — an oversized/poison
program costs one error response, never a crash or an unbounded buffer.

The distributed fabric speaks the same protocol.  Every process plays
one of :data:`ROLES`; ``health``/``stats`` responses carry the
:func:`identity` fields (``role``, ``worker_id``, ``schema_version``)
so probes can tell a gateway from a worker.  A gateway relays compile
requests with :func:`forward_envelope` — the original request plus a
``via`` provenance record and a rewritten ``deadline_ms`` holding the
*remaining* budget — and both sender and receiver refuse relay depths
past :data:`MAX_FORWARD_HOPS`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.arraylayout import ARRAY_LAYOUT_MODES
from ..core.strategies import METHODS, STRATEGIES
from ..core.workunits import RUNNERS
from ..frontends import UnknownFrontendError, validate_frontend_name
from ..liw.machine import MachineConfig
from ..service.batch import BatchJob

#: Hard cap on one request/response line (framing level).
MAX_LINE_BYTES = 1 << 20
#: Hard cap on the ``source`` field of a compile request.
MAX_SOURCE_BYTES = 1 << 18

PROTOCOL_VERSION = 1
#: Version of the ``health``/``stats`` payload schema.  Bumped when
#: fields are added/renamed so dashboards and harnesses can detect
#: what they are talking to; 2 added ``role``/``worker_id``; 3 added
#: the ``delta_cache`` stats block (and the ``max_atom_nodes``/
#: ``runner`` compile-request fields); 4 added the ``array_layout``
#: compile-request field, the per-result ``array_opt`` summary, and the
#: ``array_opt_compiles`` counter; 5 added the ``frontend``/``entry``
#: compile-request fields (CPython-bytecode frontend).
SCHEMA_VERSION = 5

OPS = ("compile", "health", "stats")
STATUSES = ("ok", "error", "overloaded", "timeout", "shutting-down")
#: Process roles of the distributed fabric (``serve --role``).
ROLES = ("single", "gateway", "worker", "fabric")
#: Hard bound on gateway-to-worker forwarding depth: a request that
#: has already been relayed this many times is refused instead of
#: forwarded again, so a misconfigured ring can never loop.
MAX_FORWARD_HOPS = 2


class ProtocolError(ValueError):
    """A request that cannot be parsed into a valid operation."""


@dataclass(frozen=True, slots=True)
class Request:
    """One decoded, validated client request."""

    op: str
    id: object = None
    job: BatchJob | None = None  # compile only
    deadline_ms: float | None = None
    include_allocation: bool = False
    #: forwarding provenance when the request was relayed by a gateway:
    #: ``{"gateway": <gateway_id>, "hop": <1..MAX_FORWARD_HOPS>}``
    via: dict[str, object] | None = None

    @property
    def hop(self) -> int:
        """Relay depth: 0 for a direct client request."""
        if self.via is None:
            return 0
        return int(self.via["hop"])  # type: ignore[arg-type]


def encode_message(payload: dict[str, object]) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, object]:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj


def machine_from_dict(data: object) -> MachineConfig:
    """Build a MachineConfig from the optional ``machine`` field."""
    if data is None:
        return MachineConfig()
    if not isinstance(data, dict):
        raise ProtocolError("machine must be an object")
    allowed = {"num_fus", "num_modules", "mem_ports", "delta"}
    unknown = set(data) - allowed
    if unknown:
        raise ProtocolError(f"unknown machine fields: {sorted(unknown)}")
    try:
        return MachineConfig(**data)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad machine config: {exc}") from exc


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def parse_request(obj: dict[str, object]) -> Request:
    """Validate one decoded request object into a :class:`Request`.

    Everything user-controlled is checked here, before any work is
    queued, so a malformed request costs one error response."""
    op = obj.get("op")
    _require(op in OPS, f"op must be one of {OPS}, got {op!r}")
    request_id = obj.get("id")
    if op != "compile":
        return Request(op=str(op), id=request_id)

    source = obj.get("source")
    _require(isinstance(source, str) and source.strip() != "",
             "compile requires a non-empty 'source' string")
    assert isinstance(source, str)
    _require(
        len(source.encode("utf-8", "ignore")) <= MAX_SOURCE_BYTES,
        f"source exceeds {MAX_SOURCE_BYTES} bytes",
    )

    strategy = str(obj.get("strategy", "STOR1")).upper()
    _require(strategy in STRATEGIES,
             f"unknown strategy {strategy!r} (valid: {sorted(STRATEGIES)})")
    method = str(obj.get("method", "hitting_set"))
    _require(method in METHODS,
             f"unknown method {method!r} (valid: {list(METHODS)})")

    unroll = obj.get("unroll", 1)
    _require(isinstance(unroll, int) and not isinstance(unroll, bool)
             and 1 <= unroll <= 64, "unroll must be an int in 1..64")
    seed = obj.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             "seed must be an int")
    k = obj.get("k")
    _require(k is None or (isinstance(k, int) and not isinstance(k, bool)
                           and k >= 1), "k must be a positive int or null")
    max_atom_nodes = obj.get("max_atom_nodes")
    _require(
        max_atom_nodes is None
        or (isinstance(max_atom_nodes, int)
            and not isinstance(max_atom_nodes, bool) and max_atom_nodes >= 1),
        "max_atom_nodes must be a positive int or null",
    )
    runner = str(obj.get("runner", "serial"))
    _require(runner in RUNNERS,
             f"unknown runner {runner!r} (valid: {list(RUNNERS)})")
    array_layout = str(obj.get("array_layout", "fixed"))
    _require(
        array_layout in ARRAY_LAYOUT_MODES,
        f"unknown array_layout {array_layout!r} "
        f"(valid: {list(ARRAY_LAYOUT_MODES)})",
    )
    frontend = str(obj.get("frontend", "mini"))
    try:
        validate_frontend_name(frontend)
    except UnknownFrontendError as exc:
        raise ProtocolError(str(exc)) from exc
    entry = obj.get("entry", "")
    _require(isinstance(entry, str), "entry must be a string")
    assert isinstance(entry, str)

    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        _require(
            isinstance(deadline_ms, (int, float))
            and not isinstance(deadline_ms, bool) and deadline_ms > 0,
            "deadline_ms must be a positive number",
        )

    via = obj.get("via")
    if via is not None:
        _require(isinstance(via, dict), "via must be an object")
        assert isinstance(via, dict)
        gateway = via.get("gateway")
        _require(isinstance(gateway, str) and gateway != "",
                 "via.gateway must be a non-empty string")
        hop = via.get("hop")
        _require(
            isinstance(hop, int) and not isinstance(hop, bool)
            and 1 <= hop <= MAX_FORWARD_HOPS,
            f"via.hop must be an int in 1..{MAX_FORWARD_HOPS}",
        )
        via = {"gateway": gateway, "hop": hop}

    job = BatchJob(
        name=str(obj.get("name", "request")),
        source=source,
        machine=machine_from_dict(obj.get("machine")),
        strategy=strategy,
        method=method,
        unroll=unroll,
        constants_in_memory=bool(obj.get("constants_in_memory", False)),
        k=k,
        seed=seed,
        max_atom_nodes=max_atom_nodes,
        runner=runner,
        array_layout=array_layout,
        frontend=frontend,
        entry=entry,
    )
    return Request(
        op="compile",
        id=request_id,
        job=job,
        deadline_ms=None if deadline_ms is None else float(deadline_ms),
        include_allocation=bool(obj.get("include_allocation", False)),
        via=via,
    )


def forward_envelope(
    obj: dict[str, object],
    *,
    deadline_ms: float,
    gateway: str,
    hop: int = 1,
) -> dict[str, object]:
    """The request a gateway relays to the owning worker.

    The original request object is preserved verbatim except for two
    fields: ``deadline_ms`` is rewritten to the *remaining* budget (the
    gateway already spent part of the client's deadline routing), and
    ``via`` records provenance and relay depth.  A hop count past
    :data:`MAX_FORWARD_HOPS` raises — loops are refused at the sender,
    and :func:`parse_request` refuses them at the receiver too.
    """
    if not 1 <= hop <= MAX_FORWARD_HOPS:
        raise ProtocolError(
            f"refusing to forward at hop {hop} "
            f"(max {MAX_FORWARD_HOPS}): forwarding loop?"
        )
    out = dict(obj)
    out["deadline_ms"] = deadline_ms
    out["via"] = {"gateway": gateway, "hop": hop}
    return out


def identity(role: str, worker_id: str | None = None) -> dict[str, object]:
    """The identity fields every ``health``/``stats`` payload carries."""
    assert role in ROLES, role
    return {
        "role": role,
        "worker_id": worker_id,
        "schema_version": SCHEMA_VERSION,
    }


def response(
    request_id: object, status: str, **fields: object
) -> dict[str, object]:
    assert status in STATUSES, status
    out: dict[str, object] = {"id": request_id, "status": status}
    out.update(fields)
    return out


def error_response(request_id: object, message: str) -> dict[str, object]:
    return response(request_id, "error", error=message)
