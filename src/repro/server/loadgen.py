"""Load generator for the compile server: ``python -m repro loadgen``.

Drives ``clients`` concurrent :class:`~repro.server.client.ServerClient`
connections through a shared workload of ``requests`` compile requests
with a controlled duplicate fraction (``dup_rate``): duplicates are
verbatim repeats drawn from a small pool of programs, which is exactly
the thundering-herd shape the server's single-flight dedup and
content-addressed cache exist for.  Optionally mixes in *poison*
requests — an oversized source and a syntactically broken program —
that a healthy server must answer with ``error`` without falling over.

The emitted report (the body of ``BENCH_server.json``) carries client-
side outcome counts and latency percentiles, retry totals, the server's
own ``stats`` snapshot taken after the run, and the derived
``checks`` the CI smoke gate asserts:

- ``stayed_up`` — every request got *some* response (no transport
  failures at the end of the retry budget);
- ``shed_not_timeout`` — overload pressure surfaced as retried
  ``overloaded`` responses, not client-visible deadline ``timeout`` s;
- ``dedup_effective`` — the server executed strictly fewer strategies
  than the number of successful compile responses (single-flight +
  cache collapse the duplicate share).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from ..passes.events import LatencyRecorder
from .client import ServerClient, TransportError

#: Deliberately malformed source: parses as text, fails in the front end.
POISON_SOURCE = "program broken; begin x := ; end."


def make_program(tag: int, terms: int) -> str:
    """A mini-language program whose *allocation problem* scales with
    ``terms``: a reduction over ``terms`` live scalar accumulators, so
    each distinct ``terms`` yields a different renamed operand structure
    and therefore a different content fingerprint.  (Varying only a
    constant would not — the cache is content-addressed over what the
    STOR strategies consume, and constants are not scalar data values.)
    """
    temps = [f"t{j}" for j in range(terms)]
    init = "\n".join(f"  {t} := {j + 2};" for j, t in enumerate(temps))
    body = ";\n".join(
        f"    {temps[j]} := {temps[j]} + a[i] * {temps[(j + 1) % terms]}"
        for j in range(terms)
    )
    collect = ";\n".join(f"  s := s + {t}" for t in temps)
    return (
        f"program load{tag};\n"
        f"var i, n, s, {', '.join(temps)}: int; a: array[16] of int;\n"
        "begin\n"
        "  n := 16;\n"
        f"{init}\n"
        "  for i := 0 to n - 1 do a[i] := i * i;\n"
        "  s := 0;\n"
        "  for i := 0 to n - 1 do begin\n"
        f"{body}\n"
        "  end;\n"
        f"{collect};\n"
        "  write(s)\n"
        "end.\n"
    )


@dataclass(frozen=True, slots=True)
class LoadgenConfig:
    clients: int = 8
    requests: int = 64
    #: fraction of requests drawn from the duplicate pool
    dup_rate: float = 0.4
    #: distinct programs in the duplicate pool
    dup_pool: int = 2
    strategy: str = "STOR1"
    deadline_ms: float = 30_000.0
    seed: int = 0
    #: include one oversized and one syntactically broken request
    poison: bool = True
    retries: int = 6
    #: override the server-side machine shape (None = server default).
    #: The adaptive bench runs at 2 modules, where the heuristic
    #: allocation leaves headroom the upgrade lane can reclaim.
    num_modules: int | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "dup_rate": self.dup_rate,
            "dup_pool": self.dup_pool,
            "strategy": self.strategy,
            "deadline_ms": self.deadline_ms,
            "seed": self.seed,
            "poison": self.poison,
            "retries": self.retries,
            "num_modules": self.num_modules,
        }


def build_workload(config: LoadgenConfig) -> list[dict[str, object]]:
    """The request mix, shuffled deterministically by ``config.seed``.

    Returns per-request spec dicts: ``{"source", "name", "kind"}`` with
    ``kind`` one of ``unique`` / ``dup`` / ``poison-big`` /
    ``poison-bad``.
    """
    rng = random.Random(config.seed)
    # The duplicate pool uses small term counts; unique programs start
    # above the pool so no "unique" accidentally equals a duplicate.
    dup_sources = [
        make_program(i, 2 + i) for i in range(config.dup_pool)
    ]
    specs: list[dict[str, object]] = []
    n_poison = 2 if config.poison else 0
    for i in range(max(0, config.requests - n_poison)):
        if rng.random() < config.dup_rate:
            j = rng.randrange(config.dup_pool)
            specs.append({
                "source": dup_sources[j],
                "name": f"dup{j}",
                "kind": "dup",
            })
        else:
            specs.append({
                "source": make_program(100 + i, 2 + config.dup_pool + i),
                "name": f"uniq{i}",
                "kind": "unique",
            })
    if config.poison:
        from .protocol import MAX_SOURCE_BYTES

        specs.append({
            "source": "program big; begin s := 1 end."
                      + " " * (MAX_SOURCE_BYTES + 1),
            "name": "poison-big",
            "kind": "poison-big",
        })
        specs.append({
            "source": POISON_SOURCE,
            "name": "poison-bad",
            "kind": "poison-bad",
        })
    rng.shuffle(specs)
    return specs


@dataclass(slots=True)
class _Tally:
    outcomes: dict[str, int] = field(default_factory=dict)
    by_kind: dict[str, dict[str, int]] = field(default_factory=dict)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    cache_hits: int = 0
    dedup_hits: int = 0
    transport_failures: int = 0

    def record(self, kind: str, status: str, elapsed: float,
               reply: dict[str, object] | None) -> None:
        self.outcomes[status] = self.outcomes.get(status, 0) + 1
        per_kind = self.by_kind.setdefault(kind, {})
        per_kind[status] = per_kind.get(status, 0) + 1
        self.latency.record(elapsed)
        if reply and isinstance(reply.get("result"), dict):
            result = reply["result"]
            if result.get("cache_hit"):  # type: ignore[union-attr]
                self.cache_hits += 1
            if result.get("dedup"):  # type: ignore[union-attr]
                self.dedup_hits += 1


async def run_load(
    host: str,
    port: int,
    config: LoadgenConfig | None = None,
    *,
    endpoints: list[tuple[str, int]] | None = None,
) -> dict[str, object]:
    """Run the full workload; returns the JSON-able report.

    ``endpoints`` drives a multi-instance deployment (e.g. several
    gateways): each client rotates across them on transport failure;
    ``host``/``port`` are then only used for the final stats probe
    fallback.  Against a gateway, the dedup check reads the aggregated
    ``cluster`` execution counts, making it a *cluster-wide*
    single-flight assertion."""
    config = config or LoadgenConfig()
    specs = build_workload(config)
    queue: asyncio.Queue[dict[str, object]] = asyncio.Queue()
    for spec in specs:
        queue.put_nowait(spec)

    tally = _Tally()
    clients: list[ServerClient] = []
    machine = (
        {"num_modules": config.num_modules}
        if config.num_modules is not None
        else None
    )

    async def worker(worker_id: int) -> None:
        client = ServerClient(
            host, port,
            retries=config.retries,
            rng=random.Random(config.seed * 1000 + worker_id),
            endpoints=endpoints,
        )
        clients.append(client)
        try:
            while True:
                try:
                    spec = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                t0 = time.monotonic()
                try:
                    reply = await client.compile(
                        str(spec["source"]),
                        name=str(spec["name"]),
                        strategy=config.strategy,
                        deadline_ms=config.deadline_ms,
                        machine=machine,
                    )
                except TransportError:
                    tally.transport_failures += 1
                    tally.record(str(spec["kind"]), "transport-failure",
                                 time.monotonic() - t0, None)
                    continue
                tally.record(
                    str(spec["kind"]), str(reply.get("status", "?")),
                    time.monotonic() - t0, reply,
                )
        finally:
            await client.close()

    t_start = time.monotonic()
    await asyncio.gather(*(worker(i) for i in range(config.clients)))
    wall_time = time.monotonic() - t_start

    # One last connection for the server-side snapshot.
    stats_client = ServerClient(host, port, retries=2, endpoints=endpoints)
    try:
        server_stats = await stats_client.stats()
    except (TransportError, ConnectionError, OSError):
        server_stats = {}
    finally:
        await stats_client.close()

    ok = tally.outcomes.get("ok", 0)
    # Against a worker/single server `requests` carries the execution
    # count; against a gateway it lives in the aggregated `cluster`
    # block (the gateway's own `requests` are routing counters).
    if server_stats.get("role") == "gateway":
        executions = _dig(server_stats, "cluster", "strategy_executions")
    else:
        executions = _dig(server_stats, "requests", "strategy_executions")
    report: dict[str, object] = {
        "config": config.as_dict(),
        "wall_time": wall_time,
        "throughput_rps": len(specs) / wall_time if wall_time > 0 else 0.0,
        "outcomes": dict(sorted(tally.outcomes.items())),
        "outcomes_by_kind": {
            kind: dict(sorted(v.items()))
            for kind, v in sorted(tally.by_kind.items())
        },
        "latency": tally.latency.snapshot(),
        "client": {
            "cache_hits": tally.cache_hits,
            "dedup_hits": tally.dedup_hits,
            "overload_retries": sum(c.overload_retries for c in clients),
            "transport_retries": sum(c.transport_retries for c in clients),
            "transport_failures": tally.transport_failures,
        },
        "server_stats": server_stats,
    }
    report["checks"] = {
        "stayed_up": tally.transport_failures == 0,
        "shed_not_timeout": tally.outcomes.get("timeout", 0) == 0,
        "dedup_effective": (
            isinstance(executions, int) and ok > 0 and executions < ok
        ),
    }
    return report


def _dig(data: object, *path: str) -> object:
    for part in path:
        if not isinstance(data, dict):
            return None
        data = data.get(part)
    return data
