"""The fabric supervisor: gateway + N worker processes, one command.

``python -m repro serve --role fabric --fabric-workers N`` runs a
:class:`Fabric`: it spawns ``N`` worker processes (each a plain
``serve --role worker`` on an ephemeral port, all sharing one
multi-process-safe :class:`~repro.service.AllocationCache` directory),
waits for their ``serving`` announcements, then starts one
:class:`~repro.server.gateway.CompileGateway` sharding over them.

Supervision loop:

- each worker's process is polled every ``probe_interval`` seconds;
- a worker that exits while the fabric is serving is restarted with
  exponential backoff (``restart_backoff_base * 2**n`` capped at
  ``restart_backoff_cap``); the restarted process gets a fresh
  ephemeral port and the gateway is repointed with
  ``update_endpoint`` — the shard map is keyed on the stable
  ``worker_id``, so ownership (and with it cluster-wide single-flight)
  survives the restart;
- while a worker is down, the gateway's ring failover routes its
  shards to the next worker; clients see retryable ``overloaded``
  responses at worst, never hard failures;
- ``max_restarts`` consecutive failures of one worker stop the
  restart loop for it (a crash-looping binary will not be hammered).

Shutdown order honors the drain invariant end to end: SIGTERM drains
the **gateway first** (stop admitting, finish in-flight forwards), then
SIGTERMs each worker and waits for its own drain (every accepted
request answered), then reaps the processes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from .gateway import CompileGateway, GatewayConfig, WorkerEndpoint


@dataclass(frozen=True, slots=True)
class FabricConfig:
    """Tunables of one :class:`Fabric` (gateway + workers)."""

    host: str = "127.0.0.1"
    #: gateway listen port (0 = ephemeral); workers always use 0
    port: int = 0
    fabric_workers: int = 2
    #: shared AllocationCache directory (required: cluster-wide cache
    #: coherence is the point; the CLI defaults it to a temp dir)
    cache_dir: str | None = None
    #: worker-side knobs, passed through to each ``serve --role worker``
    pool_workers: int = 1
    job_timeout: float | None = 120.0
    max_queue: int = 64
    max_batch: int = 8
    batch_window: float = 0.01
    default_deadline: float = 60.0
    adaptive: bool = False
    hot_threshold: int = 3
    upgrade_budget: float = 5.0
    synthetic_delay: float = 0.0
    #: gateway knobs
    failover: int = 1
    gateway_id: str = "gw-0"
    #: supervision knobs
    probe_interval: float = 0.1
    restart_backoff_base: float = 0.2
    restart_backoff_cap: float = 2.0
    #: consecutive restart attempts per worker before giving up on it
    max_restarts: int = 5
    #: seconds to wait for a spawned worker's ``serving`` announcement
    spawn_timeout: float = 30.0


@dataclass(slots=True)
class WorkerHandle:
    """One supervised worker process."""

    worker_id: str
    proc: asyncio.subprocess.Process | None = None
    host: str = ""
    port: int = 0
    state: str = "starting"  # starting | up | restarting | failed | stopped
    restarts: int = 0
    #: consecutive failed restart attempts (reset on a successful spawn)
    strikes: int = 0
    reader_task: asyncio.Task | None = field(default=None, repr=False)

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None


class FabricError(RuntimeError):
    """The fabric could not reach a serving state."""


class Fabric:
    """Supervisor for one gateway + N worker processes."""

    def __init__(self, config: FabricConfig | None = None):
        self.config = config or FabricConfig()
        assert self.config.fabric_workers >= 1
        self.workers: list[WorkerHandle] = [
            WorkerHandle(worker_id=f"w{i}")
            for i in range(self.config.fabric_workers)
        ]
        self.gateway = CompileGateway(
            GatewayConfig(
                host=self.config.host,
                port=self.config.port,
                gateway_id=self.config.gateway_id,
                failover=self.config.failover,
                default_deadline=self.config.default_deadline,
            ),
            extra_stats=self.fabric_stats,
        )
        self._monitor_task: asyncio.Task | None = None
        self._draining = False
        self._started_at = time.monotonic()

    # -- spawning ------------------------------------------------------------

    def _worker_argv(self, handle: WorkerHandle) -> list[str]:
        cfg = self.config
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--role", "worker",
            "--worker-id", handle.worker_id,
            "--host", cfg.host,
            "--port", "0",
            "--announce",
            "--workers", str(cfg.pool_workers),
            "--max-queue", str(cfg.max_queue),
            "--max-batch", str(cfg.max_batch),
            "--batch-window", str(cfg.batch_window),
            "--deadline", str(cfg.default_deadline),
        ]
        if cfg.cache_dir is not None:
            argv += ["--cache-dir", cfg.cache_dir]
        if cfg.job_timeout is not None:
            argv += ["--job-timeout", str(cfg.job_timeout)]
        if cfg.adaptive:
            argv += ["--adaptive",
                     "--hot-threshold", str(cfg.hot_threshold),
                     "--upgrade-budget", str(cfg.upgrade_budget)]
        if cfg.synthetic_delay > 0:
            argv += ["--synthetic-delay-ms",
                     str(cfg.synthetic_delay * 1000.0)]
        return argv

    @staticmethod
    def _worker_env() -> dict[str, str]:
        env = dict(os.environ)
        # Make `python -m repro` resolvable in the child even when the
        # parent was launched with a cwd-relative PYTHONPATH.
        pkg_root = str(Path(__file__).resolve().parents[2])
        parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        if pkg_root not in parts:
            env["PYTHONPATH"] = os.pathsep.join([pkg_root, *parts])
        return env

    async def _spawn(self, handle: WorkerHandle) -> None:
        """Start one worker process and scrape its serving announcement."""
        handle.state = "starting"
        handle.proc = await asyncio.create_subprocess_exec(
            *self._worker_argv(handle),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=self._worker_env(),
        )
        assert handle.proc.stdout is not None
        try:
            async with asyncio.timeout(self.config.spawn_timeout):
                while True:
                    line = await handle.proc.stdout.readline()
                    if not line:
                        raise FabricError(
                            f"worker {handle.worker_id} exited before "
                            f"announcing (rc={handle.proc.returncode})"
                        )
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if event.get("event") == "serving":
                        handle.host = str(event["host"])
                        handle.port = int(event["port"])
                        break
        except TimeoutError as exc:
            handle.proc.kill()
            raise FabricError(
                f"worker {handle.worker_id} did not announce within "
                f"{self.config.spawn_timeout}s"
            ) from exc
        handle.state = "up"
        handle.strikes = 0
        # Keep draining the child's stdout so its pipe never fills.
        handle.reader_task = asyncio.create_task(
            self._discard_stdout(handle.proc.stdout),
            name=f"repro-fabric-stdout-{handle.worker_id}",
        )

    @staticmethod
    async def _discard_stdout(stream: asyncio.StreamReader) -> None:
        while await stream.readline():
            pass

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self.gateway.address

    async def start(self) -> None:
        """Spawn every worker (concurrently), then start the gateway
        and the supervision loop."""
        self._started_at = time.monotonic()
        results = await asyncio.gather(
            *(self._spawn(h) for h in self.workers),
            return_exceptions=True,
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            await self._kill_all()
            raise FabricError(
                f"{len(failures)}/{len(self.workers)} workers failed to "
                f"start: {failures[0]}"
            )
        for handle in self.workers:
            self.gateway.add_worker(
                WorkerEndpoint(handle.worker_id, handle.host, handle.port)
            )
        await self.gateway.start()
        self._monitor_task = asyncio.create_task(
            self._monitor_loop(), name="repro-fabric-monitor"
        )

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def begin_drain(self) -> None:
        """Gateway first: stop admitting; workers are drained in
        :meth:`aclose` once the gateway settles."""
        self._draining = True
        self.gateway.begin_drain()

    async def run_until_drained(self) -> dict[str, object]:
        await self.gateway.wait_drained()
        summary = await self.aclose()
        return summary

    async def aclose(self) -> dict[str, object]:
        """Drain order: gateway, then workers, then reap. Returns the
        fabric summary (per-worker restart counts + gateway counters)."""
        self._draining = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        await self.gateway.aclose()
        await asyncio.gather(
            *(self._drain_worker(h) for h in self.workers)
        )
        return self.summary()

    async def _drain_worker(self, handle: WorkerHandle) -> None:
        proc = handle.proc
        if proc is None or proc.returncode is not None:
            handle.state = "stopped"
            return
        try:
            proc.send_signal(signal.SIGTERM)
        except ProcessLookupError:  # pragma: no cover
            handle.state = "stopped"
            return
        try:
            async with asyncio.timeout(10.0):
                await proc.wait()
        except TimeoutError:  # pragma: no cover - drain hang guard
            proc.kill()
            await proc.wait()
        if handle.reader_task is not None:
            await handle.reader_task
        handle.state = "stopped"

    async def _kill_all(self) -> None:
        for handle in self.workers:
            if handle.proc is not None and handle.proc.returncode is None:
                handle.proc.kill()
                await handle.proc.wait()
            handle.state = "stopped"

    # -- supervision ---------------------------------------------------------

    async def _monitor_loop(self) -> None:
        """Poll worker processes; restart any that died while serving."""
        while True:
            await asyncio.sleep(self.config.probe_interval)
            if self._draining:
                continue
            for handle in self.workers:
                proc = handle.proc
                if (
                    handle.state == "up"
                    and proc is not None
                    and proc.returncode is not None
                ):
                    asyncio.get_running_loop().create_task(
                        self._restart(handle),
                        name=f"repro-fabric-restart-{handle.worker_id}",
                    )
                    handle.state = "restarting"

    async def _restart(self, handle: WorkerHandle) -> None:
        """Restart one dead worker with exponential backoff, then
        repoint the gateway at its new ephemeral port."""
        if handle.reader_task is not None:
            await handle.reader_task
            handle.reader_task = None
        while not self._draining:
            backoff = min(
                self.config.restart_backoff_cap,
                self.config.restart_backoff_base * (2 ** handle.strikes),
            )
            await asyncio.sleep(backoff)
            if self._draining:
                return
            try:
                await self._spawn(handle)
            except FabricError:
                handle.strikes += 1
                if handle.strikes >= self.config.max_restarts:
                    handle.state = "failed"
                    return
                continue
            handle.restarts += 1
            self.gateway.update_endpoint(
                handle.worker_id, handle.host, handle.port
            )
            return

    # -- observability -------------------------------------------------------

    def fabric_stats(self) -> dict[str, object]:
        """The ``fabric`` block the gateway attaches to its stats."""
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "draining": self._draining,
            "restart_backoff_base": self.config.restart_backoff_base,
            "restart_backoff_cap": self.config.restart_backoff_cap,
            "workers": [
                {
                    "worker_id": h.worker_id,
                    "pid": h.pid,
                    "state": h.state,
                    "restarts": h.restarts,
                    "host": h.host,
                    "port": h.port,
                }
                for h in self.workers
            ],
        }

    def summary(self) -> dict[str, object]:
        return {
            "workers": len(self.workers),
            "restarts": sum(h.restarts for h in self.workers),
            "failed_workers": sum(
                1 for h in self.workers if h.state == "failed"
            ),
            "gateway": self.gateway.counters.as_dict(),
        }


async def run_fabric(
    config: FabricConfig,
    *,
    announce=None,
    signals: bool = True,
) -> dict[str, object]:
    """Run one fabric until drained; the ``serve --role fabric`` body."""
    fabric = Fabric(config)
    await fabric.start()
    if signals:
        fabric.install_signal_handlers()
    if announce is not None:
        host, port = fabric.address
        announce({
            "event": "serving", "host": host, "port": port,
            "pid": os.getpid(), "role": "fabric",
            "workers": [
                {"worker_id": h.worker_id, "pid": h.pid, "port": h.port}
                for h in fabric.workers
            ],
        })
    summary = await fabric.run_until_drained()
    if announce is not None:
        announce({"event": "drained", **summary})
    return summary
