"""Client library for the compile server.

:class:`ServerClient` speaks the newline-delimited JSON protocol of
:mod:`repro.server.protocol` over one TCP connection and adds the retry
discipline a well-behaved client owes a backpressured service:

- **transport retries** — a refused/reset/half-closed connection is
  re-established and the request re-sent (requests are idempotent: the
  server's content-addressed cache makes a replay at worst a cache hit);
- **overload retries** — an ``overloaded`` response is retried after an
  exponential backoff with full jitter, honouring the server's
  ``retry_after_ms`` hint as the floor;
- **no retry** on ``error`` (the request itself is bad), ``timeout``
  (the deadline budget is spent), or ``shutting-down`` (this instance
  is going away) — those come back to the caller as-is.

The jitter source is an injectable :class:`random.Random` so tests and
the load generator stay deterministic.

Synchronous callers can use :func:`call_once` (connect, one request,
close) without touching asyncio.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket

from .protocol import MAX_LINE_BYTES, encode_message


class TransportError(ConnectionError):
    """Could not obtain a response after every retry."""


class ServerClient:
    """One connection to a compile server, with retry/backoff policy.

    Parameters
    ----------
    retries:
        Attempts per request *beyond* the first (applies independently
        to transport failures and overload shedding).
    backoff_base / backoff_cap:
        The exponential schedule: attempt ``i`` sleeps
        ``min(cap, base * 2**i)`` scaled by full jitter in ``[0.5, 1.5)``.
    rng:
        Jitter source; pass a seeded :class:`random.Random` for
        reproducible schedules.
    endpoints:
        Optional list of ``(host, port)`` pairs for a multi-instance
        deployment (several gateways, or gateway + standby).  The
        client talks to one endpoint at a time and *rotates* to the
        next on every transport failure, so one dead instance costs a
        transport retry, not the whole budget.  When given, ``host``/
        ``port`` are ignored.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7070,
        *,
        retries: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        connect_timeout: float = 5.0,
        response_timeout: float | None = None,
        rng: random.Random | None = None,
        endpoints: list[tuple[str, int]] | None = None,
    ):
        self.endpoints = (
            [(h, p) for h, p in endpoints] if endpoints else [(host, port)]
        )
        self._endpoint_index = 0
        self.host, self.port = self.endpoints[0]
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self.rng = rng if rng is not None else random.Random()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0
        #: retry observability (the load generator reports these)
        self.overload_retries = 0
        self.transport_retries = 0

    # -- connection management ----------------------------------------------

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def connect(self) -> None:
        if self.connected:
            return
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE_BYTES
            ),
            timeout=self.connect_timeout,
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServerClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def rotate_endpoint(self) -> None:
        """Point the next connection at the next configured endpoint
        (no-op with a single endpoint)."""
        if len(self.endpoints) > 1:
            self._endpoint_index = (
                (self._endpoint_index + 1) % len(self.endpoints)
            )
            self.host, self.port = self.endpoints[self._endpoint_index]

    # -- request plumbing ----------------------------------------------------

    def backoff_delay(self, attempt: int, floor: float = 0.0) -> float:
        """Sleep before retry ``attempt`` (0-based): exponential with
        full jitter, never below the server-provided ``floor``."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return max(floor, base * (0.5 + self.rng.random()))

    async def _roundtrip(self, payload: dict[str, object]) -> dict[str, object]:
        """One attempt: send one line, read one line."""
        await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(encode_message(payload))
        await self._writer.drain()
        read = self._reader.readline()
        if self.response_timeout is not None:
            line = await asyncio.wait_for(read, timeout=self.response_timeout)
        else:
            line = await read
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    async def request(self, op: str, **fields: object) -> dict[str, object]:
        """Send one request, applying the full retry policy.

        Returns the final response dict (any status); raises
        :class:`TransportError` only when no response could be obtained
        within the retry budget."""
        self._next_id += 1
        payload: dict[str, object] = {
            "op": op, "id": self._next_id, **fields
        }
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                reply = await self._roundtrip(payload)
            except (ConnectionError, OSError, EOFError,
                    asyncio.IncompleteReadError, socket.gaierror) as exc:
                last_error = exc
                await self.close()
                self.rotate_endpoint()
                if attempt < self.retries:
                    self.transport_retries += 1
                    await asyncio.sleep(self.backoff_delay(attempt))
                continue
            if reply.get("status") == "overloaded" and attempt < self.retries:
                self.overload_retries += 1
                hint = float(reply.get("retry_after_ms", 0.0)) / 1000.0
                await asyncio.sleep(self.backoff_delay(attempt, floor=hint))
                continue
            return reply
        raise TransportError(
            f"no response from {self.host}:{self.port} after "
            f"{self.retries + 1} attempts: {last_error!r}"
        )

    # -- operations ----------------------------------------------------------

    async def compile(
        self,
        source: str,
        *,
        name: str = "request",
        strategy: str = "STOR1",
        method: str = "hitting_set",
        unroll: int = 1,
        constants_in_memory: bool = False,
        k: int | None = None,
        seed: int = 0,
        machine: dict[str, object] | None = None,
        array_layout: str = "fixed",
        frontend: str = "mini",
        entry: str = "",
        deadline_ms: float | None = None,
        include_allocation: bool = False,
    ) -> dict[str, object]:
        fields: dict[str, object] = {
            "source": source,
            "name": name,
            "strategy": strategy,
            "method": method,
            "unroll": unroll,
            "constants_in_memory": constants_in_memory,
            "seed": seed,
        }
        if k is not None:
            fields["k"] = k
        if machine is not None:
            fields["machine"] = machine
        if array_layout != "fixed":
            fields["array_layout"] = array_layout
        if frontend != "mini":
            fields["frontend"] = frontend
            if entry:
                fields["entry"] = entry
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        if include_allocation:
            fields["include_allocation"] = True
        return await self.request("compile", **fields)

    async def health(self) -> dict[str, object]:
        return await self.request("health")

    async def stats(self) -> dict[str, object]:
        reply = await self.request("stats")
        stats = reply.get("stats")
        return stats if isinstance(stats, dict) else reply


def call_once(
    host: str, port: int, op: str, /, **fields: object
) -> dict[str, object]:
    """Blocking one-shot helper: connect, one request, disconnect."""

    async def _go() -> dict[str, object]:
        client = ServerClient(host, port)
        try:
            return await client.request(op, **fields)
        finally:
            await client.close()

    return asyncio.run(_go())
