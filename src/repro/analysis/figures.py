"""Reproductions of the paper's worked examples (Figs. 1, 3, 5, 8).

Each function replays one figure with this library's algorithms and
returns a small result object whose fields the tests (and
EXPERIMENTS.md) check against the paper's narrative:

- Fig. 1 — three modules, three instructions: a conflict-free
  single-copy assignment exists; adding ``V2 V4 V5`` forces exactly one
  extra copy; adding ``V1 V4 V5`` as well forces a value into all three
  modules.
- Fig. 3 — two minimum node-removal choices lead to different total
  copy counts: minimising removed nodes does not minimise copies.
- Fig. 5 — a k=3 run of the colouring heuristic that colours four
  values and removes the fifth; the trace is exposed.
- Fig. 8 — with V1, V2, V3, V5 placed as in the figure, the placement
  algorithm needs only three copies of V4 (the figure's solution 2),
  not four (solution 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..core.allocation import Allocation
from ..core.assign import assign_modules
from ..core.coloring import ColoringResult, color_graph
from ..core.conflict_graph import ConflictGraph
from ..core.duplication import hitting_set_duplication
from ..core.exact import exact_coloring, min_total_copies
from ..core.verify import verify_allocation

# Paper Fig. 1 operand sets (1-based value names V1..V5).
FIG1_INSTRUCTIONS = [
    frozenset({1, 2, 4}),
    frozenset({2, 3, 5}),
    frozenset({2, 3, 4}),
]
FIG1_EXTRA_1 = frozenset({2, 4, 5})
FIG1_EXTRA_2 = frozenset({1, 4, 5})

# Paper Fig. 3 operand sets.
FIG3_INSTRUCTIONS = [
    frozenset({1, 2, 3}),
    frozenset({2, 3, 4}),
    frozenset({1, 3, 4}),
    frozenset({1, 3, 5}),
    frozenset({2, 3, 5}),
    frozenset({1, 4, 5}),
]

# Paper Fig. 8: k=4, V4 removed during colouring; fixed single copies.
FIG8_INSTRUCTIONS = [
    frozenset({1, 2, 3, 5}),
    frozenset({4, 2, 3, 5}),
    frozenset({1, 2, 3, 4}),
    frozenset({4, 2, 1, 5}),
]
FIG8_FIXED = {1: 1, 2: 3, 3: 2, 5: 0}  # modules M2, M4, M3, M1 (0-based)


@dataclass(slots=True)
class Fig1Result:
    base_allocation: Allocation
    base_conflict_free: bool
    extra1_allocation: Allocation
    extra1_copies: int
    extra2_allocation: Allocation
    extra2_copies: int
    max_copy_count: int


def reproduce_fig1(method: str = "hitting_set") -> Fig1Result:
    base = assign_modules(FIG1_INSTRUCTIONS, 3, method=method)
    sets1 = FIG1_INSTRUCTIONS + [FIG1_EXTRA_1]
    extra1 = assign_modules(sets1, 3, method=method)
    sets2 = sets1 + [FIG1_EXTRA_2]
    extra2 = assign_modules(sets2, 3, method=method)
    assert verify_allocation(FIG1_INSTRUCTIONS, base.allocation)
    assert verify_allocation(sets1, extra1.allocation)
    assert verify_allocation(sets2, extra2.allocation)
    return Fig1Result(
        base_allocation=base.allocation,
        base_conflict_free=base.allocation.extra_copies == 0,
        extra1_allocation=extra1.allocation,
        extra1_copies=extra1.allocation.extra_copies,
        extra2_allocation=extra2.allocation,
        extra2_copies=extra2.allocation.extra_copies,
        max_copy_count=max(
            extra2.allocation.copy_count(v) for v in extra2.allocation.values()
        ),
    )


@dataclass(slots=True)
class Fig3Result:
    removal_options: list[frozenset[int]]
    copies_by_removal: dict[frozenset[int], int]

    @property
    def spread(self) -> int:
        counts = sorted(self.copies_by_removal.values())
        return counts[-1] - counts[0]


def _min_copies_given_removal(
    sets: list[frozenset[int]], k: int, removed: frozenset[int]
) -> int | None:
    """Fewest extra copies when only ``removed`` values may be
    duplicated, minimised over proper colourings of the rest."""
    values = sorted(set().union(*sets))
    kept = [v for v in values if v not in removed]
    graph = ConflictGraph.from_operand_sets(sets)
    coloring = exact_coloring(graph.subgraph(kept), k)
    if coloring is None:
        return None
    best: int | None = None
    # Enumerate copy-set choices for the removed values.
    module_sets = [
        frozenset(c)
        for size in range(1, k + 1)
        for c in combinations(range(k), size)
    ]

    def search(idx: int, alloc: dict[int, frozenset[int]], extra: int) -> None:
        nonlocal best
        if best is not None and extra >= best:
            return
        removed_list = sorted(removed)
        if idx == len(removed_list):
            from ..core.verify import sdr_exists

            if all(
                sdr_exists([alloc[v] for v in s]) for s in sets
            ):
                best = extra
            return
        v = removed_list[idx]
        for ms in sorted(module_sets, key=len):
            alloc[v] = ms
            search(idx + 1, alloc, extra + len(ms) - 1)
        del alloc[v]

    fixed = {v: frozenset({c}) for v, c in coloring.items()}
    search(0, dict(fixed), 0)
    return best


def reproduce_fig3(k: int = 3) -> Fig3Result:
    """All minimum-size removal sets for the Fig. 3 instance, and the
    optimal extra-copy count each one leads to."""
    sets = FIG3_INSTRUCTIONS
    values = sorted(set().union(*sets))
    graph = ConflictGraph.from_operand_sets(sets)
    options: list[frozenset[int]] = []
    for r in range(len(values) + 1):
        for removed in combinations(values, r):
            rest = [v for v in values if v not in removed]
            if exact_coloring(graph.subgraph(rest), k) is not None:
                options.append(frozenset(removed))
        if options:
            break
    copies = {}
    for removed in options:
        extra = _min_copies_given_removal(sets, k, removed)
        if extra is not None:
            copies[removed] = extra
    return Fig3Result(options, copies)


@dataclass(slots=True)
class Fig5Result:
    coloring: ColoringResult
    colored: dict[int, int]
    removed: list[int]


# An instance with the Fig. 5 outcome under the Fig. 4 heuristic (k=3):
# The clique separator {V1, V2} splits off the atom {V1, V2, V4}.  In
# the main atom {V1, V2, V3, V5}: V1 has the highest outgoing weight
# (S = 9; coloured first, M1); V2 and V3 follow by urgency (M2, M3);
# V5's three coloured neighbours then cover every module (K = 0 —
# infinite urgency — removed).  V4 is coloured in the second atom.
FIG5_INSTRUCTIONS = [
    frozenset({1, 2, 3}),
    frozenset({1, 2, 3}),
    frozenset({1, 2, 5}),
    frozenset({1, 3, 5}),
    frozenset({2, 3, 5}),
    frozenset({1, 2, 4}),
]


def reproduce_fig5(k: int = 3) -> Fig5Result:
    graph = ConflictGraph.from_operand_sets(FIG5_INSTRUCTIONS)
    coloring = color_graph(graph, k)
    return Fig5Result(coloring, dict(coloring.assignment), list(coloring.unassigned))


@dataclass(slots=True)
class Fig8Result:
    allocation: Allocation
    v4_copies: int
    optimal_v4_copies: int
    conflict_free: bool
    residual: list[frozenset[int]] = field(default_factory=list)


def reproduce_fig8(tie_break: str = "first") -> Fig8Result:
    """Replay Fig. 8: V1/V2/V3/V5 fixed as in the figure, V4 removed
    during colouring; the placement machinery should reach the figure's
    solution 2 (three copies of V4), not solution 1 (four)."""
    k = 4
    alloc = Allocation(k)
    for v, m in FIG8_FIXED.items():
        alloc.add_copy(v, m)
    stats = hitting_set_duplication(
        FIG8_INSTRUCTIONS,
        alloc,
        unassigned=[4],
        duplicable={4},
        tie_break=tie_break,
    )
    # With the figure's fixed single copies, each instruction pins V4 to
    # one specific module (M1, M2, M1, M3) — three copies are forced and
    # sufficient, which is the figure's solution 2.
    return Fig8Result(
        allocation=alloc,
        v4_copies=alloc.copy_count(4),
        optimal_v4_copies=3,
        conflict_free=verify_allocation(FIG8_INSTRUCTIONS, alloc),
        residual=stats.residual_combos,
    )
