"""The paper's overall speed-up claim (§3).

"The results obtained for the overall speed-up in execution on the
reconfigurable long instruction word (RLIW) system varied from
64-300%." — we compare a sequential machine (one operation per cycle;
the TAC interpreter's step count) against the LIW machine (executed
long-instruction cycles plus memory-transfer stalls from the Δ model).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.strategies import stor1
from ..ir.interp import run_cfg
from ..liw.machine import MachineConfig
from ..pipeline import compile_for_paper, simulate
from ..programs import all_programs


@dataclass(slots=True)
class SpeedupRow:
    program: str
    sequential_ops: int
    sequential_time: int
    liw_cycles: int
    liw_total_time: float
    speedup_percent: float  # paper convention: 100% = 2x


@dataclass(slots=True)
class SpeedupTable:
    rows: list[SpeedupRow]

    def format(self) -> str:
        lines = [
            "Overall speed-up (one-module sequential machine vs k-module LIW,"
            " both with Δ transfer serialisation)",
            f"{'program':10s} {'seq ops':>8s} {'seq time':>9s} {'liw':>8s}"
            f" {'liw+mem':>9s} {'speedup':>9s}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.program:10s} {r.sequential_ops:8d} {r.sequential_time:9d}"
                f" {r.liw_cycles:8d} {r.liw_total_time:9.0f}"
                f" {r.speedup_percent:8.0f}%"
            )
        return "\n".join(lines)

    @property
    def range(self) -> tuple[float, float]:
        speeds = [r.speedup_percent for r in self.rows]
        return min(speeds), max(speeds)


def speedup_for_program(
    spec, machine: MachineConfig | None = None, unroll: int = 4
) -> SpeedupRow:
    machine = machine or MachineConfig(num_fus=4, num_modules=8)
    program = compile_for_paper(spec.source, machine, unroll=unroll)
    storage = stor1(program.schedule, program.renamed, machine.k)
    sim = simulate(program, storage.allocation, list(spec.inputs))

    # Sequential reference: the original (un-unrolled) program on a
    # one-module machine — one operation at a time, every memory access
    # serialised through the single module (same constant placement).
    from ..ir.builder import compile_to_tac
    from ..ir.cfg import build_cfg

    seq_cfg = build_cfg(compile_to_tac(spec.source, constants_in_memory=True))
    seq = run_cfg(seq_cfg, list(spec.inputs))
    assert seq.outputs == sim.outputs or _close(seq.outputs, sim.outputs)

    total = sim.total_time
    speedup = (seq.sequential_time / total - 1.0) * 100.0
    return SpeedupRow(
        spec.name, seq.steps, seq.sequential_time, sim.cycles, total, speedup
    )


def _close(a: list[object], b: list[object]) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            if abs(float(x) - float(y)) > 1e-9 * max(1.0, abs(float(x))):
                return False
        elif x != y:
            return False
    return True


def generate_speedup(
    machine: MachineConfig | None = None, unroll: int = 4
) -> SpeedupTable:
    return SpeedupTable(
        [speedup_for_program(spec, machine, unroll) for spec in all_programs()]
    )
