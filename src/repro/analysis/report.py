"""One-shot experiment report: regenerates every table/figure/claim.

Run as ``python -m repro.analysis.report``; EXPERIMENTS.md records one
full output of this module next to the paper's numbers.

Also renders the batch-service reports (``python -m repro batch``):
:func:`batch_report_json` / :func:`format_batch_report` — and the
per-pass trace tables of ``python -m repro compile --trace``:
:func:`format_trace` / :func:`trace_json`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from ..passes.events import PassEvent
    from ..service.batch import BatchReport

from .figures import (
    reproduce_fig1,
    reproduce_fig3,
    reproduce_fig5,
    reproduce_fig8,
)
from .speedup import generate_speedup
from .table1 import generate_table1
from .table2 import generate_table2
from .worstcase import (
    hitting_set_gap_adversary,
    worst_coloring_gap_random,
    worst_hitting_gap_random,
)


def _section(title: str) -> str:
    return f"\n{'=' * 72}\n{title}\n{'=' * 72}"


def figures_report() -> str:
    lines = [_section("Worked figures (paper Figs. 1, 3, 5, 8)")]
    f1 = reproduce_fig1()
    lines.append(
        f"Fig. 1: conflict-free single-copy assignment found: "
        f"{f1.base_conflict_free}"
    )
    lines.append(f1.base_allocation.grid())
    lines.append(
        f"  + V2V4V5 -> extra copies: {f1.extra1_copies} (paper: 1, a copy"
        " of V5)"
    )
    lines.append(
        f"  + V1V4V5 -> extra copies: {f1.extra2_copies} (paper: 2 — with"
        " V5 in all three modules; any 2-extra-copy allocation is equally"
        " optimal)"
    )

    f3 = reproduce_fig3()
    lines.append(
        "Fig. 3: minimum removals all have size 2; optimal extra copies by"
        " removal choice:"
    )
    for removed, copies in sorted(
        f3.copies_by_removal.items(), key=lambda kv: sorted(kv[0])
    ):
        tag = ""
        if set(removed) == {4, 5}:
            tag = "   <- the paper's first (worse) choice"
        if set(removed) == {2, 5}:
            tag = "   <- the paper's second (better) choice"
        lines.append(f"  remove {sorted(removed)} -> {copies} extra{tag}")
    lines.append(
        f"  spread = {f3.spread} (same removal count, different copying —"
        " the figure's point)"
    )

    f5 = reproduce_fig5()
    lines.append(
        f"Fig. 5: heuristic coloured {sorted(f5.colored)} and removed"
        f" {f5.removed} (paper: four values coloured, V5 removed)"
    )
    for step in f5.coloring.trace:
        lines.append(
            f"    {step.action:11s} V{step.node}"
            + (f" -> M{step.module + 1}" if step.module is not None else "")
            + f"  (urgency numerator {step.urgency_numerator},"
            f" modules left {step.modules_left})"
        )

    f8 = reproduce_fig8()
    lines.append(
        f"Fig. 8: placement uses {f8.v4_copies} copies of V4 (paper"
        f" solution 2 = 3; solution 1 wasted 4); conflict-free:"
        f" {f8.conflict_free}"
    )
    lines.append(f8.allocation.grid())
    return "\n".join(lines)


def worstcase_report() -> str:
    lines = [_section("Worst-case claims (heuristic vs optimal)")]
    gap = worst_coloring_gap_random(trials=40, n=9, k=3)
    lines.append(
        f"Colouring: worst random gap {gap.instance}: heuristic removed"
        f" {gap.heuristic_removed}, optimal {gap.optimal_removed}"
        f" (paper bound: ratio can reach (n-k)/2 = {(gap.n - gap.k) / 2:.1f})"
    )
    for m in (3, 5, 8):
        hs = hitting_set_gap_adversary(m)
        lines.append(
            f"Hitting set m={m}: paper-heuristic {hs.paper_size},"
            f" greedy {hs.greedy_size}, optimal {hs.optimal_size},"
            f" H_m bound {hs.h_m_bound:.2f}"
            f" (ratio {hs.paper_ratio:.2f} <= H_m: "
            f"{hs.paper_ratio <= hs.h_m_bound + 1e-9})"
        )
    hs_worst = worst_hitting_gap_random(trials=200)
    lines.append(
        f"Hitting set: worst random gap {hs_worst.instance}:"
        f" paper-heuristic {hs_worst.paper_size} vs optimal"
        f" {hs_worst.optimal_size} (ratio {hs_worst.paper_ratio:.2f},"
        f" H_m bound {hs_worst.h_m_bound:.2f})"
    )
    return "\n".join(lines)


def full_report(unroll: int = 4) -> str:
    """Regenerate every experiment; returns the printable report."""
    parts = []
    t0 = time.time()

    parts.append(_section("Table 1 (k=8, hitting-set approach)"))
    parts.append(generate_table1(unroll=unroll).format())

    parts.append(_section("Table 2 (k=8 and k=4)"))
    parts.append(generate_table2(unroll=unroll).format())

    parts.append(_section("Speed-up claim (paper: 64-300%)"))
    table = generate_speedup(unroll=unroll)
    parts.append(table.format())
    lo, hi = table.range
    parts.append(f"range: {lo:.0f}% .. {hi:.0f}%")

    parts.append(figures_report())
    parts.append(worstcase_report())

    parts.append(f"\n[report generated in {time.time() - t0:.1f}s]")
    return "\n".join(parts)


def format_trace(events: "Iterable[PassEvent]") -> str:
    """Per-pass timing table for one pipeline run's terminal events.

    Sub-stage events (``allocate.STOR2.region1``, ...) are indented
    under their pass; skipped and cache-served passes are labelled.
    """
    rows = [e for e in events if e.is_terminal]
    lines = [
        f"{'pass':28s} {'status':8s} {'time':>10s}  details",
        "-" * 72,
    ]
    total = 0.0
    for e in rows:
        status = {"end": "ran", "cache-hit": "cached"}.get(e.status, e.status)
        name = e.name
        if "." in name:  # sub-stage of a pass
            name = "  " + name.split(".", 1)[1]
        else:
            total += e.wall_time if e.executed else 0.0
        details = " ".join(f"{k}={v}" for k, v in e.counts.items())
        if e.warnings:
            details += ("  " if details else "") + "! " + "; ".join(e.warnings)
        lines.append(
            f"{name:28s} {status:8s} {e.wall_time * 1e3:9.3f}ms  {details}"
        )
    lines.append("-" * 72)
    lines.append(f"{'total':28s} {'':8s} {total * 1e3:9.3f}ms")
    return "\n".join(lines)


def trace_json(events: "Iterable[PassEvent]") -> list[dict[str, object]]:
    """JSON-able rendering of a run's terminal pass events."""
    return [e.as_dict() for e in events if e.is_terminal]


def batch_report_json(report: "BatchReport") -> dict[str, object]:
    """The metrics JSON of one batch run: per-job outcomes and stage
    metrics, aggregate stage totals, and cache hit/miss statistics."""
    return report.as_dict()


def format_batch_report(report: "BatchReport") -> str:
    """Human-readable rendering of a :class:`BatchReport`."""
    lines = [
        f"{'program':10s} {'strategy':8s} {'mode':15s} {'hit':3s} "
        f"{'=1':>4s} {'>1':>4s} {'copies':>6s} {'time':>8s}"
    ]
    for r in report.results:
        if r.storage is not None:
            cols = (
                f"{r.storage.singles:4d} {r.storage.multiples:4d} "
                f"{r.storage.total_copies:6d}"
            )
        else:
            cols = f"{'-':>4s} {'-':>4s} {'-':>6s}"
        hit = "y" if r.cache_hit else "."
        lines.append(
            f"{r.job.name:10s} {r.job.strategy.upper():8s} {r.mode:15s} "
            f"{hit:3s} {cols} {r.wall_time:7.3f}s"
            + (f"  ! {r.error}" if r.error else "")
        )
    cache = report.cache_stats
    lines.append(
        f"{report.num_ok}/{len(report.results)} ok in "
        f"{report.wall_time:.3f}s with {report.workers} worker(s); "
        f"cache {cache.get('hits', 0)} hit / {cache.get('misses', 0)} miss "
        f"({report.hit_rate:.0%} of jobs served from cache)"
    )
    frontend = report.artifact_stats
    if frontend.get("hits", 0) or frontend.get("misses", 0):
        lines.append(
            f"front-end passes: {frontend.get('hits', 0)} reused / "
            f"{frontend.get('misses', 0)} compiled "
            f"({frontend.get('entries', 0)} cached stage entr"
            f"{'y' if frontend.get('entries', 0) == 1 else 'ies'})"
        )
    totals = sorted(
        report.stage_totals().items(), key=lambda kv: -kv[1]
    )
    if totals:
        lines.append(
            "stage totals: "
            + ", ".join(f"{name} {t:.3f}s" for name, t in totals[:8])
        )
    return "\n".join(lines)


def format_server_stats(stats: dict[str, object]) -> str:
    """Human-readable rendering of a ``stats`` endpoint snapshot
    (:meth:`repro.server.CompileServer.stats`)."""

    def block(name: str) -> dict[str, object]:
        value = stats.get(name)
        return value if isinstance(value, dict) else {}

    requests, queue, cache = block("requests"), block("queue"), block("cache")
    latency = block("latency")
    total = latency.get("total", {})
    if not isinstance(total, dict):
        total = {}
    lines = [
        f"state={stats.get('state', '?')} "
        f"uptime={float(stats.get('uptime_s', 0.0) or 0.0):.1f}s",
        f"requests: {requests.get('requests', 0)} total, "
        f"{requests.get('ok', 0)} ok, {requests.get('errors', 0)} error, "
        f"{requests.get('overloaded', 0)} overloaded, "
        f"{requests.get('timeouts', 0)} timeout",
        f"queue: depth {queue.get('depth', 0)}/{queue.get('max_depth', 0)} "
        f"(high water {queue.get('high_water', 0)}), "
        f"{queue.get('shed', 0)} shed, {queue.get('attached', 0)} coalesced "
        f"single-flight, {queue.get('abandoned', 0)} abandoned",
        f"batches: {queue.get('batches', 0)} dispatched, "
        f"mean size {float(queue.get('mean_batch_size', 0.0) or 0.0):.2f}, "
        f"max {queue.get('max_batch_size', 0)}",
        f"dedup: {requests.get('dedup_hits', 0)} attached waiters, "
        f"{requests.get('strategy_executions', 0)} strategy executions, "
        f"{requests.get('cache_hits', 0)} cache-served responses",
        f"latency: p50 {float(total.get('p50', 0.0) or 0.0) * 1e3:.1f}ms "
        f"p90 {float(total.get('p90', 0.0) or 0.0) * 1e3:.1f}ms "
        f"p99 {float(total.get('p99', 0.0) or 0.0) * 1e3:.1f}ms",
        f"cache: {cache.get('hits', 0)} hit / {cache.get('misses', 0)} miss"
        f" / {cache.get('corrupt', 0)} quarantined "
        f"({float(cache.get('hit_rate', 0.0) or 0.0):.0%})",
    ]
    upgrades = block("upgrades")
    if upgrades.get("enabled"):
        lines.append(
            f"upgrades: {upgrades.get('attempted', 0)} attempted, "
            f"{upgrades.get('improved', 0)} improved, "
            f"{upgrades.get('rejected', 0)} rejected, "
            f"{upgrades.get('failed', 0)} failed; "
            f"{upgrades.get('copies_saved', 0)} copies saved, "
            f"t_ave −"
            f"{float(upgrades.get('t_ave_delta', 0.0) or 0.0):.2f}"
        )
    return "\n".join(lines)


def format_loadgen_report(report: dict[str, object]) -> str:
    """Human-readable rendering of a load-generator run
    (:func:`repro.server.loadgen.run_load`)."""

    def block(name: str) -> dict[str, object]:
        value = report.get(name)
        return value if isinstance(value, dict) else {}

    config, outcomes = block("config"), block("outcomes")
    latency, client, checks = block("latency"), block("client"), block("checks")
    lines = [
        f"{config.get('requests', '?')} requests over "
        f"{config.get('clients', '?')} clients "
        f"(dup rate {float(config.get('dup_rate', 0.0) or 0.0):.0%}) in "
        f"{float(report.get('wall_time', 0.0) or 0.0):.3f}s "
        f"({float(report.get('throughput_rps', 0.0) or 0.0):.1f} req/s)",
        "outcomes: " + ", ".join(
            f"{status} {count}" for status, count in outcomes.items()
        ),
        f"latency: p50 {float(latency.get('p50', 0.0) or 0.0) * 1e3:.1f}ms "
        f"p90 {float(latency.get('p90', 0.0) or 0.0) * 1e3:.1f}ms "
        f"p99 {float(latency.get('p99', 0.0) or 0.0) * 1e3:.1f}ms "
        f"max {float(latency.get('max', 0.0) or 0.0) * 1e3:.1f}ms",
        f"client: {client.get('cache_hits', 0)} cache-hit responses, "
        f"{client.get('dedup_hits', 0)} dedup-attached, "
        f"{client.get('overload_retries', 0)} overload retries, "
        f"{client.get('transport_failures', 0)} transport failures",
        "checks: " + ", ".join(
            f"{name}={'ok' if passed else 'FAIL'}"
            for name, passed in checks.items()
        ),
    ]
    server_stats = report.get("server_stats")
    if isinstance(server_stats, dict) and server_stats:
        lines.append("-- server --")
        lines.append(format_server_stats(server_stats))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - exercised via CLI
    print(full_report())


if __name__ == "__main__":  # pragma: no cover
    main()
