"""Strategy experiments on synthetic operand-set streams.

Table 1's mechanism — whole-program assignment beats phased assignment
because later phases inherit colours chosen with partial information —
depends on conflict density.  These helpers run STOR-style strategies
directly on operand-set workloads (no compiler in the loop), so the
density can be dialled and the divergence charted
(`benchmarks/test_density_sweep.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.allocation import Allocation
from ..core.assign import assign_modules
from ..core.verify import conflicting_instructions


@dataclass(slots=True)
class SyntheticResult:
    strategy: str
    allocation: Allocation
    extra_copies: int
    residual: int


def whole_program(
    sets: Sequence[frozenset[int]], k: int, seed: int = 0
) -> SyntheticResult:
    """STOR1 analogue: one conflict graph over the whole stream."""
    result = assign_modules(sets, k, seed=seed)
    return SyntheticResult(
        "whole",
        result.allocation,
        result.allocation.extra_copies,
        len(conflicting_instructions(sets, result.allocation)),
    )


def phased(
    regions: Sequence[Sequence[frozenset[int]]], k: int, seed: int = 0
) -> SyntheticResult:
    """STOR3/STOR-REGION analogue: assign one region at a time, earlier
    placements fixed."""
    alloc: Allocation | None = None
    for region in regions:
        stage = assign_modules(list(region), k, initial=alloc, seed=seed)
        alloc = stage.allocation
    assert alloc is not None
    flat = [s for region in regions for s in region]
    return SyntheticResult(
        f"phased({len(regions)})",
        alloc,
        alloc.extra_copies,
        len(conflicting_instructions(flat, alloc)),
    )


def globals_first(
    regions: Sequence[Sequence[frozenset[int]]], k: int, seed: int = 0
) -> SyntheticResult:
    """STOR2 analogue: values occurring in more than one region are
    assigned first, using only their mutual conflicts; then each region's
    locals around them."""
    seen: dict[int, int] = {}
    for i, region in enumerate(regions):
        for ops in region:
            for v in ops:
                seen.setdefault(v, i)
    shared = {
        v
        for i, region in enumerate(regions)
        for ops in region
        for v in ops
        if seen[v] != i
    }

    flat = [s for region in regions for s in region]
    stage1 = assign_modules(
        [ops & shared for ops in flat], k, all_values=shared, seed=seed
    )
    alloc = stage1.allocation
    for region in regions:
        stage = assign_modules(list(region), k, initial=alloc, seed=seed)
        alloc = stage.allocation
    return SyntheticResult(
        "globals_first",
        alloc,
        alloc.extra_copies,
        len(conflicting_instructions(flat, alloc)),
    )
