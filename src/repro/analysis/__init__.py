"""Experiment harness regenerating every table, figure, and claim."""

from .figures import (
    reproduce_fig1,
    reproduce_fig3,
    reproduce_fig5,
    reproduce_fig8,
)
from .report import full_report
from .speedup import SpeedupTable, generate_speedup, speedup_for_program
from .table1 import Table1, generate_table1, table1_for_program
from .table2 import Table2, generate_table2, table2_cell
from .workloads import (
    clustered_instructions,
    crown_graph_instructions,
    greedy_hitting_adversary,
    random_instructions,
)
from .worstcase import (
    ColoringGap,
    HittingSetGap,
    coloring_gap_crown,
    coloring_gap_random,
    h_m,
    hitting_set_gap_adversary,
    hitting_set_gap_random,
    worst_coloring_gap_random,
    worst_hitting_gap_random,
)

__all__ = [
    "reproduce_fig1",
    "reproduce_fig3",
    "reproduce_fig5",
    "reproduce_fig8",
    "full_report",
    "SpeedupTable",
    "generate_speedup",
    "speedup_for_program",
    "Table1",
    "generate_table1",
    "table1_for_program",
    "Table2",
    "generate_table2",
    "table2_cell",
    "clustered_instructions",
    "crown_graph_instructions",
    "greedy_hitting_adversary",
    "random_instructions",
    "ColoringGap",
    "HittingSetGap",
    "coloring_gap_crown",
    "coloring_gap_random",
    "h_m",
    "hitting_set_gap_adversary",
    "hitting_set_gap_random",
    "worst_coloring_gap_random",
    "worst_hitting_gap_random",
]
