"""Synthetic instruction workloads for ablations and stress tests.

The paper's experiments run on six real programs; the ablation
benchmarks additionally use random operand-set streams with controlled
density, where the differences between strategies and heuristics are
measurable at any chosen operating point.
"""

from __future__ import annotations

import random
from typing import Sequence


def random_instructions(
    n_values: int,
    n_instructions: int,
    operands_per_instr: int,
    seed: int = 0,
    hot_fraction: float = 0.2,
    hot_weight: float = 4.0,
) -> list[frozenset[int]]:
    """Random operand sets over ``n_values`` data values.

    A ``hot_fraction`` of the values (think: named variables, memory
    constants) is sampled ``hot_weight`` times more often than the rest
    (think: single-use temporaries), mimicking the degree skew of real
    conflict graphs.
    """
    if operands_per_instr > n_values:
        raise ValueError("operands_per_instr cannot exceed n_values")
    rng = random.Random(seed)
    n_hot = max(1, int(n_values * hot_fraction))
    weights = [hot_weight] * n_hot + [1.0] * (n_values - n_hot)
    values = list(range(n_values))

    sets: list[frozenset[int]] = []
    for _ in range(n_instructions):
        chosen: set[int] = set()
        while len(chosen) < operands_per_instr:
            chosen.add(rng.choices(values, weights=weights)[0])
        sets.append(frozenset(chosen))
    return sets


def clustered_instructions(
    n_clusters: int,
    values_per_cluster: int,
    instructions_per_cluster: int,
    shared_values: int,
    operands_per_instr: int,
    seed: int = 0,
) -> list[frozenset[int]]:
    """Workload with per-region value clusters plus globally shared
    values — the structure that separates STOR1/STOR2/STOR3: shared
    values conflict across clusters, locals only within their own."""
    rng = random.Random(seed)
    shared = list(range(shared_values))
    sets: list[frozenset[int]] = []
    for c in range(n_clusters):
        base = shared_values + c * values_per_cluster
        locals_ = list(range(base, base + values_per_cluster))
        for _ in range(instructions_per_cluster):
            n_shared = rng.randint(1, min(2, operands_per_instr - 1))
            chosen = set(rng.sample(shared, n_shared)) if shared else set()
            while len(chosen) < operands_per_instr:
                chosen.add(rng.choice(locals_))
            sets.append(frozenset(chosen))
    return sets


def crown_graph_instructions(n: int) -> list[frozenset[int]]:
    """Pairwise conflicts forming the crown graph S_n^0 (complete
    bipartite K_{n,n} minus a perfect matching) — the classic adversary
    for ordering-based colouring heuristics (2-colourable, but bad
    orders need many colours)."""
    sets = []
    for i in range(n):
        for j in range(n):
            if i != j:
                sets.append(frozenset({i, n + j}))
    return sets


def greedy_hitting_adversary(m: int) -> list[frozenset[int]]:
    """A family on which one-shot occurrence-count heuristics overshoot.

    Universe: ``a`` and ``b`` hit everything between them in two picks;
    decoys ``d_1..d_m`` each hit many small sets, luring count-greedy
    choices.  Derived from the classic H_m-tightness construction for
    greedy covering (paper §2.2.2.1 quotes the same bound).
    """
    sets: list[frozenset[int]] = []
    next_id = 2 + m  # 0 = a, 1 = b, 2..m+1 = decoys
    for i in range(m):
        decoy = 2 + i
        # Each decoy co-occurs with a in several sets and with b in one.
        for _ in range(m - i):
            filler = next_id
            next_id += 1
            sets.append(frozenset({0, decoy, filler}))
        sets.append(frozenset({1, decoy}))
    return sets


def region_stream(
    sets: Sequence[frozenset[int]], n_regions: int
) -> list[list[frozenset[int]]]:
    """Split a workload into equal consecutive regions."""
    if n_regions < 1:
        raise ValueError("n_regions must be >= 1")
    chunk = max(1, -(-len(sets) // n_regions))
    return [list(sets[i : i + chunk]) for i in range(0, len(sets), chunk)]
