"""Table 1 — Duplication of Data (paper §3).

For each of the six benchmark programs and each storage strategy
(STOR1, STOR2, STOR3), count the scalars ending up with exactly one
copy (column ``=1``) and with multiple copies (column ``>1``), on the
eight-module machine, using the hitting-set approach (the paper reports
that backtracking gave "quite similar" results — the ablation benchmark
checks that claim).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.strategies import run_strategy
from ..liw.machine import MachineConfig
from ..pipeline import CompiledProgram, compile_for_paper
from ..programs import all_programs

STRATEGY_NAMES = ("STOR1", "STOR2", "STOR3")


@dataclass(slots=True)
class Table1Row:
    program: str
    singles: dict[str, int]
    multiples: dict[str, int]
    residuals: dict[str, int]


@dataclass(slots=True)
class Table1:
    k: int
    method: str
    rows: list[Table1Row]

    def format(self) -> str:
        header = (
            f"Table 1. Duplication of Data (k={self.k}, {self.method})\n"
            f"{'':10s}" + "".join(f"| {s:^11s} " for s in STRATEGY_NAMES)
            + "\n"
            f"{'program':10s}"
            + "|  =1    >1   " * len(STRATEGY_NAMES)
        )
        lines = [header]
        for row in self.rows:
            cells = "".join(
                f"| {row.singles[s]:4d} {row.multiples[s]:4d}   "
                for s in STRATEGY_NAMES
            )
            lines.append(f"{row.program:10s}{cells}")
        return "\n".join(lines)


def compiled_suite(
    machine: MachineConfig | None = None, unroll: int = 4
) -> list[tuple[object, CompiledProgram]]:
    """The six paper benchmarks compiled at the paper-scale configuration."""
    machine = machine or MachineConfig(num_fus=4, num_modules=8)
    return [
        (spec, compile_for_paper(spec.source, machine, unroll=unroll))
        for spec in all_programs()
    ]


def table1_for_program(
    program: CompiledProgram,
    name: str,
    k: int | None = None,
    method: str = "hitting_set",
) -> Table1Row:
    singles: dict[str, int] = {}
    multiples: dict[str, int] = {}
    residuals: dict[str, int] = {}
    for strategy in STRATEGY_NAMES:
        result = run_strategy(
            strategy, program.schedule, program.renamed, k, method=method
        )
        singles[strategy] = result.singles
        multiples[strategy] = result.multiples
        residuals[strategy] = len(result.residual_instructions)
    return Table1Row(name, singles, multiples, residuals)


def generate_table1(
    machine: MachineConfig | None = None,
    method: str = "hitting_set",
    unroll: int = 4,
) -> Table1:
    """Regenerate Table 1 on the compiled benchmark suite."""
    machine = machine or MachineConfig(num_fus=4, num_modules=8)
    rows = [
        table1_for_program(prog, spec.name, machine.k, method)
        for spec, prog in compiled_suite(machine, unroll)
    ]
    return Table1(machine.k, method, rows)
