"""Table 2 — Memory Conflicts due to Array Accesses (paper §3).

Array accesses cannot be placed at compile time; the paper quantifies
the damage with three transfer times per program (t_min: arrays never
conflict; t_max: all arrays in one module; t_ave: arrays uniformly
distributed, ``t_ave = Σ i·Δ·p(i)``) and reports ``t_ave/t_min`` and
``t_max/t_min`` for k = 8 and k = 4.

We execute each program (STOR1 allocation, hitting-set approach) on the
LIW executor with the memory simulator attached, which computes all
three measures exactly per executed instruction.

Beyond the paper: with ``array_layout="optimize"`` each cell also
carries ``opt_ratio`` — the measured ``t_opt/t_min`` of the same
program executed under the compile-time array-layout optimizer's plan
(:mod:`repro.core.arraylayout`).  The baseline columns are computed
from the *unoptimized* run and are unchanged by the knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.strategies import stor1
from ..liw.machine import MachineConfig
from ..pipeline import compile_for_paper, simulate
from ..programs import all_programs


@dataclass(slots=True)
class Table2Cell:
    ave_ratio: float
    max_ratio: float
    actual_ratio: float
    #: measured t_opt/t_min under the array-layout optimizer's plan
    #: (None when the table was generated with array_layout='fixed')
    opt_ratio: float | None = None


@dataclass(slots=True)
class Table2Row:
    program: str
    cells: dict[int, Table2Cell]  # key: k


@dataclass(slots=True)
class Table2:
    ks: tuple[int, ...]
    rows: list[Table2Row]

    @property
    def has_opt(self) -> bool:
        return any(
            cell.opt_ratio is not None
            for row in self.rows
            for cell in row.cells.values()
        )

    def format(self) -> str:
        # The topt/tmin column sits between t_min (the implicit 1.00
        # floor every ratio is against) and the tave/tmin column, and
        # only appears when the optimizer ran.
        with_opt = self.has_opt
        width = 29 if with_opt else 19
        head = f"{'':10s}" + "".join(
            f"| {'M=<M1..M%d>' % k:^{width}s} " for k in self.ks
        )
        opt_col = "topt/tmin " if with_opt else ""
        sub = f"{'program':10s}" + "".join(
            f"| {opt_col}tave/tmin tmax/tmin " for _ in self.ks
        )
        lines = ["Table 2. Memory Conflicts due to Array Accesses", head, sub]
        for row in self.rows:
            cells = ""
            for k in self.ks:
                cell = row.cells[k]
                opt = ""
                if with_opt:
                    opt = (
                        f"  {cell.opt_ratio:5.2f}   "
                        if cell.opt_ratio is not None
                        else f"  {'-':>5s}   "
                    )
                cells += (
                    f"|{opt}   {cell.ave_ratio:5.2f}    "
                    f"{cell.max_ratio:5.2f}   "
                )
            lines.append(f"{row.program:10s}{cells}")
        return "\n".join(lines)


def table2_cell(
    spec,
    k: int,
    num_fus: int = 4,
    unroll: int = 4,
    delta: float = 1.0,
    array_layout: str = "fixed",
) -> Table2Cell:
    machine = MachineConfig(num_fus=num_fus, num_modules=k, delta=delta)
    program = compile_for_paper(spec.source, machine, unroll=unroll)
    storage = stor1(program.schedule, program.renamed, k)
    result = simulate(
        program, storage.allocation, list(spec.inputs), delta=delta
    )
    mem = result.memory
    opt_ratio = None
    if array_layout == "optimize":
        from ..core.arraylayout import optimize_arrays

        plan = optimize_arrays(program.schedule, storage)
        opt = simulate(
            program, storage.allocation, list(spec.inputs), delta=delta,
            plan=plan,
        )
        # t_opt against the *baseline* t_min: the plan's moves preserve
        # the instruction count, so the denominators coincide.
        opt_ratio = (
            opt.memory.t_actual / mem.t_min if mem.t_min else 1.0
        )
    return Table2Cell(mem.ave_ratio, mem.max_ratio, mem.actual_ratio,
                      opt_ratio)


def generate_table2(
    ks: tuple[int, ...] = (8, 4),
    num_fus: int = 4,
    unroll: int = 4,
    array_layout: str = "fixed",
) -> Table2:
    """Regenerate Table 2: per program, ratios for each module count.

    ``array_layout="optimize"`` adds the measured ``topt/tmin`` column
    (execution under the array-layout optimizer's plan); the paper's
    own columns are always computed from the unoptimized run.
    """
    rows = []
    for spec in all_programs():
        cells = {
            k: table2_cell(spec, k, num_fus, unroll,
                           array_layout=array_layout)
            for k in ks
        }
        rows.append(Table2Row(spec.name, cells))
    return Table2(tuple(ks), rows)
