"""Table 2 — Memory Conflicts due to Array Accesses (paper §3).

Array accesses cannot be placed at compile time; the paper quantifies
the damage with three transfer times per program (t_min: arrays never
conflict; t_max: all arrays in one module; t_ave: arrays uniformly
distributed, ``t_ave = Σ i·Δ·p(i)``) and reports ``t_ave/t_min`` and
``t_max/t_min`` for k = 8 and k = 4.

We execute each program (STOR1 allocation, hitting-set approach) on the
LIW executor with the memory simulator attached, which computes all
three measures exactly per executed instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.strategies import stor1
from ..liw.machine import MachineConfig
from ..pipeline import compile_for_paper, simulate
from ..programs import all_programs


@dataclass(slots=True)
class Table2Cell:
    ave_ratio: float
    max_ratio: float
    actual_ratio: float


@dataclass(slots=True)
class Table2Row:
    program: str
    cells: dict[int, Table2Cell]  # key: k


@dataclass(slots=True)
class Table2:
    ks: tuple[int, ...]
    rows: list[Table2Row]

    def format(self) -> str:
        head = f"{'':10s}" + "".join(
            f"| {'M=<M1..M%d>' % k:^19s} " for k in self.ks
        )
        sub = f"{'program':10s}" + "".join(
            "| tave/tmin tmax/tmin " for _ in self.ks
        )
        lines = ["Table 2. Memory Conflicts due to Array Accesses", head, sub]
        for row in self.rows:
            cells = "".join(
                f"|   {row.cells[k].ave_ratio:5.2f}    {row.cells[k].max_ratio:5.2f}   "
                for k in self.ks
            )
            lines.append(f"{row.program:10s}{cells}")
        return "\n".join(lines)


def table2_cell(
    spec, k: int, num_fus: int = 4, unroll: int = 4, delta: float = 1.0
) -> Table2Cell:
    machine = MachineConfig(num_fus=num_fus, num_modules=k, delta=delta)
    program = compile_for_paper(spec.source, machine, unroll=unroll)
    storage = stor1(program.schedule, program.renamed, k)
    result = simulate(
        program, storage.allocation, list(spec.inputs), delta=delta
    )
    mem = result.memory
    return Table2Cell(mem.ave_ratio, mem.max_ratio, mem.actual_ratio)


def generate_table2(
    ks: tuple[int, ...] = (8, 4), num_fus: int = 4, unroll: int = 4
) -> Table2:
    """Regenerate Table 2: per program, ratios for each module count."""
    rows = []
    for spec in all_programs():
        cells = {k: table2_cell(spec, k, num_fus, unroll) for k in ks}
        rows.append(Table2Row(spec.name, cells))
    return Table2(tuple(ks), rows)
