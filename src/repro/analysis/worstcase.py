"""Worst-case behaviour of the paper's heuristics (§2.1, §2.2.2.1).

The paper states two performance bounds:

- the colouring heuristic may leave ``(n-k)`` nodes uncoloured where the
  optimum leaves two — ratio ``(n-k)/2``;
- the hitting-set heuristic is ``H_m``-approximate, ``H_m = 1 + 1/2 +
  ... + 1/m``, where m bounds how many sets an element appears in.

These functions measure both heuristics against the exact algorithms of
:mod:`repro.core.exact` — on adversarial families (crown graphs for the
colouring order, the classic greedy-covering trap for hitting sets) and
on random instances — demonstrating genuine suboptimality gaps while
checking that the paper's bounds are respected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.coloring import color_graph
from ..core.conflict_graph import ConflictGraph
from ..core.exact import min_hitting_set, min_removal_coloring
from ..core.hitting_set import greedy_hitting_set, is_hitting_set, paper_hitting_set
from .workloads import crown_graph_instructions, greedy_hitting_adversary


@dataclass(slots=True)
class ColoringGap:
    instance: str
    n: int
    k: int
    heuristic_removed: int
    optimal_removed: int

    @property
    def ratio(self) -> float:
        if self.optimal_removed == 0:
            return float("inf") if self.heuristic_removed else 1.0
        return self.heuristic_removed / self.optimal_removed


def coloring_gap_crown(n: int, k: int = 2) -> ColoringGap:
    """Crown graph S_n^0: 2-colourable (optimal removes 0); ordering
    heuristics can be lured into removals."""
    graph = ConflictGraph.from_operand_sets(crown_graph_instructions(n))
    heur = color_graph(graph, k)
    # The crown graph is bipartite: optimal removal count is 0 for k>=2.
    return ColoringGap(f"crown({n})", 2 * n, k, len(heur.unassigned), 0)


def coloring_gap_random(
    n: int, k: int, edge_prob: float, seed: int
) -> ColoringGap:
    rng = random.Random(seed)
    sets = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_prob:
                sets.append(frozenset({i, j}))
    graph = ConflictGraph.from_operand_sets(sets)
    heur = color_graph(graph, k)
    removed, _ = min_removal_coloring(graph, k)
    return ColoringGap(
        f"G({n},{edge_prob})#{seed}", n, k, len(heur.unassigned), len(removed)
    )


def worst_coloring_gap_random(
    trials: int = 50, n: int = 9, k: int = 3, edge_prob: float = 0.55
) -> ColoringGap:
    """The worst heuristic/optimal removal gap over random instances."""
    worst: ColoringGap | None = None
    for seed in range(trials):
        gap = coloring_gap_random(n, k, edge_prob, seed)
        if (
            worst is None
            or (gap.heuristic_removed - gap.optimal_removed)
            > (worst.heuristic_removed - worst.optimal_removed)
        ):
            worst = gap
    assert worst is not None
    return worst


@dataclass(slots=True)
class HittingSetGap:
    instance: str
    m: int
    paper_size: int
    greedy_size: int
    optimal_size: int
    h_m_bound: float

    @property
    def paper_ratio(self) -> float:
        return self.paper_size / self.optimal_size if self.optimal_size else 1.0


def h_m(m: int) -> float:
    return sum(1.0 / i for i in range(1, m + 1))


def hitting_set_gap_adversary(m: int, k: int = 8) -> HittingSetGap:
    sets = greedy_hitting_adversary(m)
    occurrences = max(
        sum(1 for s in sets if v in s) for v in set().union(*sets)
    )
    paper = paper_hitting_set(sets, k=max(k, max(len(s) for s in sets)))
    greedy = greedy_hitting_set(sets)
    optimal = min_hitting_set(sets)
    assert is_hitting_set(sets, paper)
    assert is_hitting_set(sets, greedy)
    return HittingSetGap(
        f"adversary({m})", m, len(paper), len(greedy), len(optimal),
        h_m(occurrences),
    )


def worst_hitting_gap_random(
    trials: int = 200,
    universe: int = 9,
    max_size: int = 3,
) -> HittingSetGap:
    """The worst paper-heuristic/optimal ratio found by random search —
    demonstrating that the Fig. 9 one-pass heuristic genuinely
    overshoots (while staying within the paper's H_m bound)."""
    import random as _random

    worst: HittingSetGap | None = None
    for seed in range(trials):
        rng = _random.Random(seed)
        sets = [
            frozenset(rng.sample(range(universe), rng.randint(2, max_size)))
            for _ in range(rng.randint(6, 14))
        ]
        gap = _gap_for(sets, max_size, f"random#{seed}")
        if gap.optimal_size == 0:
            continue
        if worst is None or gap.paper_ratio > worst.paper_ratio:
            worst = gap
    assert worst is not None
    return worst


def _gap_for(
    sets: list[frozenset[int]], k: int, name: str
) -> HittingSetGap:
    occurrences = max(
        (sum(1 for s in sets if v in s) for v in set().union(*sets)),
        default=1,
    )
    paper = paper_hitting_set(sets, k)
    greedy = greedy_hitting_set(sets)
    optimal = min_hitting_set(sets)
    assert is_hitting_set(sets, paper)
    return HittingSetGap(
        name, len(sets), len(paper), len(greedy), len(optimal),
        h_m(occurrences),
    )


def hitting_set_gap_random(
    n_sets: int, universe: int, max_size: int, seed: int
) -> HittingSetGap:
    rng = random.Random(seed)
    sets = [
        frozenset(
            rng.sample(range(universe), rng.randint(1, max_size))
        )
        for _ in range(n_sets)
    ]
    occurrences = max(
        (sum(1 for s in sets if v in s) for v in range(universe)),
        default=1,
    )
    paper = paper_hitting_set(sets, k=max_size)
    greedy = greedy_hitting_set(sets)
    optimal = min_hitting_set(sets)
    assert is_hitting_set(sets, paper)
    return HittingSetGap(
        f"random#{seed}", n_sets, len(paper), len(greedy), len(optimal),
        h_m(occurrences),
    )
