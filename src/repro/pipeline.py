"""End-to-end compilation pipeline: source text to simulated execution.

This is now a thin facade over the :mod:`repro.passes` pass manager.
The staged pipeline the paper's compiler describes::

    source --(lang)--> AST --(ir)--> TAC --> CFG --> renamed values
           --(liw)--> long-instruction schedule
           --(core)--> storage allocation (STOR1/2/3)
           --(memsim)--> transfer-time report

runs as the registered pass sequence
``parse -> unroll -> sema -> lower -> simplify -> rename -> schedule
-> allocate -> simulate`` (see :mod:`repro.passes.registry`), each pass
with typed artifacts, a chained content fingerprint, and structured
tracer events.  The functions here keep the original one-call API —
and produce byte-identical results to the pre-pass-manager pipeline —
while exposing the new machinery through the optional ``tracer`` and
``cache`` arguments.

Most callers want :func:`compile_source` and then either
:func:`repro.core.run_strategy` or :func:`simulate`; callers that want
per-pass observability or stage-level reuse use :func:`run_pipeline`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .core.allocation import Allocation
from .core.strategies import StorageResult, run_strategy
from .liw.machine import MachineConfig
from .memsim.passes import simulate_program
from .passes.artifacts import (
    CompiledProgram,
    PipelineOptions,
    SimulationResult,
    compiled_program,
)
from .passes.cache import ArtifactCache
from .passes.delta import DeltaCache
from .passes.events import Metrics, MetricsTracer, TeeTracer, Tracer
from .passes.manager import Pass, PassManager, PassRunResult
from .passes.registry import (
    compile_passes_for,
    frontend_passes_for,
    full_pipeline_for,
)

if TYPE_CHECKING:
    from .core.arraylayout import ArrayLayoutPlan

__all__ = [
    "CompiledProgram",
    "SimulationResult",
    "allocate_storage",
    "compile_for_paper",
    "compile_source",
    "run_pipeline",
    "simulate",
]


def _combined_tracer(
    tracer: Tracer | None, metrics: Metrics | None
) -> Tracer | None:
    """Merge an explicit tracer with the legacy metrics channel."""
    sinks: list[Tracer] = []
    if tracer is not None:
        sinks.append(tracer)
    if metrics is not None:
        sinks.append(MetricsTracer(metrics))
    if not sinks:
        return None
    return sinks[0] if len(sinks) == 1 else TeeTracer(sinks)


def _note_cache_counters(
    metrics: Metrics | None, run: PassRunResult, cache: ArtifactCache | None
) -> None:
    # Hits are already counted per-event by MetricsTracer; only the
    # miss total needs recording here.
    if metrics is None or cache is None:
        return
    if run.cache_misses:
        metrics.incr("pass_cache_misses", run.cache_misses)


def run_pipeline(
    source: str,
    options: PipelineOptions | None = None,
    *,
    passes: tuple[Pass, ...] | None = None,
    inputs: list[object] | None = None,
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
    cache: ArtifactCache | None = None,
    delta_cache: DeltaCache | None = None,
) -> PassRunResult:
    """Run a pass pipeline over ``source`` and return the full result
    (artifact store, per-pass fingerprints, events, cache counters).

    ``passes`` defaults to compile + allocate; pass ``inputs`` to run
    the full pipeline including simulation.  ``delta_cache`` enables
    sub-pass fragment reuse (per-atom allocation fragments) across
    near-duplicate sources — see :mod:`repro.passes.delta`.
    """
    options = options if options is not None else PipelineOptions()
    if passes is None:
        passes = (
            full_pipeline_for(options.frontend)
            if inputs is not None
            else compile_passes_for(options.frontend)
        )
    initial: dict[str, object] = {"source": source}
    if inputs is not None:
        initial["inputs"] = list(inputs)
    manager = PassManager(
        passes,
        tracer=_combined_tracer(tracer, metrics),
        cache=cache,
        delta=delta_cache,
    )
    run = manager.run(initial, options)
    _note_cache_counters(metrics, run, cache)
    return run


def compile_source(
    source: str,
    machine: MachineConfig | None = None,
    unroll: int = 1,
    unroll_innermost_only: bool = False,
    constants_in_memory: bool = False,
    immediate_limit: int = 15,
    simplify: bool = True,
    rename_mode: str = "web",
    metrics: Metrics | None = None,
    tracer: Tracer | None = None,
    cache: ArtifactCache | None = None,
    frontend: str = "mini",
    py_entry: str = "",
) -> CompiledProgram:
    """Compile source text down to a LIW schedule.

    ``frontend`` selects the source language: ``mini`` (the default —
    the original mini-language, with pass fingerprints unchanged) or
    ``python`` (a real Python kernel function compiled via CPython
    bytecode; ``py_entry`` names it when the source defines several).

    ``unroll`` > 1 replicates eligible ``for`` bodies (see
    :mod:`repro.ir.unroll`) — the block-enlarging transformation LIW
    compilers rely on.  ``constants_in_memory`` places literals beyond
    the immediate fields into data memory, where they participate in
    storage assignment as read-only values.  The paper-scale experiment
    configuration (:func:`compile_for_paper`) enables both.

    ``metrics`` (a :class:`repro.passes.Metrics`) collects per-stage
    wall times for the batch service's reports; ``tracer`` receives the
    richer per-pass event stream; ``cache`` (an
    :class:`~repro.passes.cache.ArtifactCache`) enables stage-level
    reuse of the front-end artifacts across calls.
    """
    options = PipelineOptions(
        machine=machine,
        frontend=frontend,
        py_entry=py_entry,
        unroll=unroll,
        unroll_innermost_only=unroll_innermost_only,
        constants_in_memory=constants_in_memory,
        immediate_limit=immediate_limit,
        simplify=simplify,
        rename_mode=rename_mode,
    )
    run = run_pipeline(
        source,
        options,
        passes=frontend_passes_for(frontend),
        tracer=tracer,
        metrics=metrics,
        cache=cache,
    )
    return compiled_program(run.store)


def compile_for_paper(
    source: str,
    machine: MachineConfig | None = None,
    unroll: int = 4,
) -> CompiledProgram:
    """The configuration of the paper-scale experiments: unrolled loops
    (an aggressive compacting compiler) and memory-resident constants
    (narrow LIW immediate fields)."""
    return compile_source(
        source,
        machine,
        unroll=unroll,
        constants_in_memory=True,
    )


def allocate_storage(
    program: CompiledProgram,
    strategy: str = "STOR1",
    method: str = "hitting_set",
    k: int | None = None,
    **kwargs,
) -> StorageResult:
    """Run one of the paper's storage strategies on a compiled program.

    Unknown strategy knobs raise a :class:`ValueError` naming the valid
    options (see :func:`repro.core.strategies.validate_strategy_kwargs`).
    """
    return run_strategy(
        strategy, program.schedule, program.renamed, k, method=method, **kwargs
    )


def simulate(
    program: CompiledProgram,
    allocation: Allocation,
    inputs: list[object] | None = None,
    layout: str = "interleaved",
    delta: float = 1.0,
    max_cycles: int = 5_000_000,
    scheduled_transfers: bool = False,
    plan: "ArrayLayoutPlan | None" = None,
) -> SimulationResult:
    """Execute a compiled program under an allocation and array layout,
    collecting the paper's transfer-time statistics.

    With ``scheduled_transfers`` the duplicated values are filled by
    compile-time-scheduled Transfer operations instead of eager
    multi-module writes (see :mod:`repro.liw.transfers`).

    With ``plan`` (from :func:`repro.core.arraylayout.optimize_arrays`
    or the ``array-opt`` pass) execution runs under the optimized
    per-array layouts with the plan's schedule moves applied.
    """
    return simulate_program(
        program.cfg,
        program.renamed,
        program.schedule,
        allocation,
        inputs,
        layout=layout,
        delta=delta,
        max_cycles=max_cycles,
        scheduled_transfers=scheduled_transfers,
        plan=plan,
    )
