"""End-to-end compilation pipeline: source text to simulated execution.

This is the convenience layer gluing the substrates together the way the
paper's compiler does:

    source --(lang)--> AST --(ir)--> TAC --> CFG --> renamed values
           --(liw)--> long-instruction schedule
           --(core)--> storage allocation (STOR1/2/3)
           --(memsim)--> transfer-time report

Most callers want :func:`compile_source` and then either
:func:`repro.core.run_strategy` or :func:`simulate`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from .core.allocation import Allocation
from .core.strategies import StorageResult, run_strategy
from .ir.builder import lower_ast
from .ir.cfg import Cfg, build_cfg
from .ir.rename import RenamedProgram, rename
from .ir.simplify import simplify_cfg
from .ir.unroll import unroll_program
from .lang.parser import parse
from .lang.sema import analyze
from .liw.executor import ExecResult, LiwExecutor
from .liw.machine import MachineConfig
from .liw.schedule import Schedule
from .liw.scheduler import schedule_program
from .memsim.interleave import make_layout
from .memsim.simulator import MemoryReport, MemorySimulator

if TYPE_CHECKING:  # avoid a runtime repro.service <-> repro.pipeline cycle
    from .service.metrics import Metrics, StageMetric


@contextmanager
def _stage(
    metrics: "Metrics | None", name: str
) -> "Iterator[StageMetric | None]":
    """Time one front-end stage when a metrics collector is supplied."""
    if metrics is None:
        yield None
    else:
        with metrics.stage(name) as record:
            yield record


@dataclass(slots=True)
class CompiledProgram:
    """A program after the machine-independent and scheduling phases."""

    name: str
    cfg: Cfg
    renamed: RenamedProgram
    schedule: Schedule

    @property
    def machine(self) -> MachineConfig:
        return self.schedule.machine


def compile_source(
    source: str,
    machine: MachineConfig | None = None,
    unroll: int = 1,
    unroll_innermost_only: bool = False,
    constants_in_memory: bool = False,
    immediate_limit: int = 15,
    simplify: bool = True,
    rename_mode: str = "web",
    metrics: "Metrics | None" = None,
) -> CompiledProgram:
    """Compile mini-language source down to a LIW schedule.

    ``unroll`` > 1 replicates eligible ``for`` bodies (see
    :mod:`repro.ir.unroll`) — the block-enlarging transformation LIW
    compilers rely on.  ``constants_in_memory`` places literals beyond
    the immediate fields into data memory, where they participate in
    storage assignment as read-only values.  The paper-scale experiment
    configuration (:func:`compile_for_paper`) enables both.

    ``metrics`` (a :class:`repro.service.Metrics`) collects per-stage
    wall times for the batch service's reports.
    """
    machine = machine or MachineConfig()
    with _stage(metrics, "parse"):
        tree = parse(source)
    if unroll > 1:
        with _stage(metrics, "unroll"):
            tree = unroll_program(tree, unroll, unroll_innermost_only)
    with _stage(metrics, "sema"):
        analyze(tree)
    with _stage(metrics, "lower"):
        tac_prog = lower_ast(tree, constants_in_memory, immediate_limit)
        cfg = build_cfg(tac_prog)
    if simplify:
        with _stage(metrics, "simplify"):
            cfg = simplify_cfg(cfg)
    with _stage(metrics, "rename") as record:
        renamed = rename(cfg, mode=rename_mode)
        if record is not None:
            record.counts["values"] = len(renamed.values)
    with _stage(metrics, "schedule") as record:
        schedule = schedule_program(renamed, machine)
        if record is not None:
            record.counts["instructions"] = schedule.num_instructions
            record.counts["operations"] = schedule.num_operations
    return CompiledProgram(tac_prog.name, cfg, renamed, schedule)


def compile_for_paper(
    source: str,
    machine: MachineConfig | None = None,
    unroll: int = 4,
) -> CompiledProgram:
    """The configuration of the paper-scale experiments: unrolled loops
    (an aggressive compacting compiler) and memory-resident constants
    (narrow LIW immediate fields)."""
    return compile_source(
        source,
        machine,
        unroll=unroll,
        constants_in_memory=True,
    )


def allocate_storage(
    program: CompiledProgram,
    strategy: str = "STOR1",
    method: str = "hitting_set",
    k: int | None = None,
    **kwargs,
) -> StorageResult:
    """Run one of the paper's storage strategies on a compiled program."""
    return run_strategy(
        strategy, program.schedule, program.renamed, k, method=method, **kwargs
    )


@dataclass(slots=True)
class SimulationResult:
    exec_result: ExecResult
    memory: MemoryReport

    @property
    def outputs(self) -> list[object]:
        return self.exec_result.outputs

    @property
    def cycles(self) -> int:
        return self.exec_result.cycles

    @property
    def total_time(self) -> float:
        """Execution cycles plus transfer-serialisation stall time beyond
        the one Δ-per-instruction already inside the cycle count."""
        return self.cycles + self.memory.stall_time


def simulate(
    program: CompiledProgram,
    allocation: Allocation,
    inputs: list[object] | None = None,
    layout: str = "interleaved",
    delta: float = 1.0,
    max_cycles: int = 5_000_000,
    scheduled_transfers: bool = False,
) -> SimulationResult:
    """Execute a compiled program under an allocation and array layout,
    collecting the paper's transfer-time statistics.

    With ``scheduled_transfers`` the duplicated values are filled by
    compile-time-scheduled Transfer operations instead of eager
    multi-module writes (see :mod:`repro.liw.transfers`).
    """
    machine = program.machine
    arrays = sorted(program.cfg.arrays)
    schedule = program.schedule
    if scheduled_transfers:
        from .liw.transfers import insert_transfers

        schedule, _ = insert_transfers(schedule, allocation)
    sim = MemorySimulator(
        allocation,
        make_layout(layout, arrays, machine.k),
        machine.k,
        delta=delta,
        eager_copies=not scheduled_transfers,
    )
    executor = LiwExecutor(
        schedule,
        inputs,
        max_cycles,
        observers=[sim],
        initial_values=program.renamed.initial_values(),
    )
    result = executor.run()
    return SimulationResult(result, sim.report())
